package uplink

import (
	"testing"

	"repro/internal/tag"
)

// ablationTrial decodes one synthetic transmission with the given variant
// and returns the bit error count.
func ablationTrial(t *testing.T, v Variant, cfg synthConfig, seed int64) int {
	t.Helper()
	payload := randomPayload(90, seed)
	const bitDur = 0.01
	mod, err := tag.NewModulator(tag.FrameBits(payload), 1.0, bitDur)
	if err != nil {
		t.Fatal(err)
	}
	cfg.duration = mod.End() + 0.5
	s := synthSeries(cfg, mod, seed+500)
	d, _ := NewDecoder(DefaultConfig(bitDur))
	res, err := d.DecodeVariant(s, mod.Start(), len(payload), v)
	if err != nil {
		t.Fatal(err)
	}
	return countBitErrors(res.Payload, payload)
}

func TestPaperVariantMatchesDecodeCSI(t *testing.T) {
	payload := randomPayload(90, 1)
	const bitDur = 0.01
	mod, _ := tag.NewModulator(tag.FrameBits(payload), 1.0, bitDur)
	cfg := defaultSynth()
	cfg.duration = mod.End() + 0.5
	s := synthSeries(cfg, mod, 2)
	d, _ := NewDecoder(DefaultConfig(bitDur))
	a, err := d.DecodeCSI(s, mod.Start(), len(payload))
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.DecodeVariant(s, mod.Start(), len(payload), PaperVariant)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Payload {
		if a.Payload[i] != b.Payload[i] {
			t.Fatalf("paper variant diverges from DecodeCSI at bit %d", i)
		}
	}
}

func TestMRCBeatsBestSingleAtWeakDepth(t *testing.T) {
	cfg := defaultSynth()
	cfg.depth = 0.04
	var mrc, single int
	for seed := int64(0); seed < 4; seed++ {
		mrc += ablationTrial(t, PaperVariant, cfg, 30+seed)
		single += ablationTrial(t, Variant{Combining: CombineBestSingle}, cfg, 30+seed)
	}
	if mrc > single {
		t.Errorf("MRC errors (%d) should not exceed best-single errors (%d)", mrc, single)
	}
}

func TestEqualGainNoBetterThanMRC(t *testing.T) {
	cfg := defaultSynth()
	cfg.depth = 0.035
	var mrc, eq int
	for seed := int64(0); seed < 5; seed++ {
		mrc += ablationTrial(t, PaperVariant, cfg, 60+seed)
		eq += ablationTrial(t, Variant{Combining: CombineEqualGain}, cfg, 60+seed)
	}
	// MRC is optimal for unequal noise; allow ties but not a clear loss.
	if mrc > eq+3 {
		t.Errorf("MRC errors (%d) should not exceed equal-gain errors (%d) by a margin", mrc, eq)
	}
}

func TestHysteresisHelpsWithSpikes(t *testing.T) {
	// Inject heavy-tailed spikes: hysteresis+vote should beat bit-mean,
	// which a single spike inside a bit can flip.
	cfg := defaultSynth()
	cfg.depth = 0.15
	mkSeries := func(seed int64) int {
		payload := randomPayload(90, seed)
		mod, _ := tag.NewModulator(tag.FrameBits(payload), 1.0, 0.01)
		cfg.duration = mod.End() + 0.5
		s := synthSeries(cfg, mod, seed+900)
		// Spike 3% of measurements by 20x.
		spike := 0
		for i := range s.Measurements {
			if i%33 == 0 {
				for a := range s.Measurements[i].CSI {
					for k := range s.Measurements[i].CSI[a] {
						s.Measurements[i].CSI[a][k] *= 20
					}
				}
				spike++
			}
		}
		d, _ := NewDecoder(DefaultConfig(0.01))
		hv, err := d.DecodeVariant(s, mod.Start(), len(payload), PaperVariant)
		if err != nil {
			t.Fatal(err)
		}
		bm, err := d.DecodeVariant(s, mod.Start(), len(payload), Variant{Decision: DecideBitMean})
		if err != nil {
			t.Fatal(err)
		}
		return countBitErrors(bm.Payload, payload) - countBitErrors(hv.Payload, payload)
	}
	total := 0
	for seed := int64(0); seed < 3; seed++ {
		total += mkSeries(100 + seed)
	}
	if total < 0 {
		t.Errorf("bit-mean should not beat hysteresis+vote under spikes (diff %d)", total)
	}
}

func TestTimestampBinningBeatsEqualCountUnderBursts(t *testing.T) {
	// Bursty packet timing: equal-count binning misassigns measurements.
	cfg := defaultSynth()
	cfg.depth = 0.15
	cfg.jitter = 1.8 // heavily irregular arrivals
	var tsErrs, eqErrs int
	for seed := int64(0); seed < 4; seed++ {
		tsErrs += ablationTrial(t, PaperVariant, cfg, 200+seed)
		eqErrs += ablationTrial(t, Variant{Binning: BinEqualCount}, cfg, 200+seed)
	}
	if tsErrs > eqErrs {
		t.Errorf("timestamp binning (%d errors) should not lose to equal-count (%d)", tsErrs, eqErrs)
	}
}

func TestVariantStrings(t *testing.T) {
	v := Variant{CombineEqualGain, DecidePlainVote, BinEqualCount}
	if got := v.String(); got != "equal-gain/plain-vote/equal-count" {
		t.Errorf("Variant.String() = %q", got)
	}
	if PaperVariant.String() != "mrc/hysteresis-vote/timestamp" {
		t.Errorf("PaperVariant.String() = %q", PaperVariant.String())
	}
}

func TestDecodeVariantValidation(t *testing.T) {
	d, _ := NewDecoder(DefaultConfig(0.01))
	mod, _ := tag.NewModulator([]bool{true}, 0, 0.01)
	s := synthSeries(defaultSynth(), mod, 1)
	if _, err := d.DecodeVariant(s, 0, 0, PaperVariant); err == nil {
		t.Error("zero payload should error")
	}
}

func TestBinEqualCount(t *testing.T) {
	ts := []float64{0.1, 1.1, 1.2, 1.3, 1.4, 5.0}
	// Window [1.0, 1.4): three in-window samples split 2/1.
	bins := binEqualCount(ts, 1.0, 0.2, 2)
	if len(bins[0]) != 2 || len(bins[1]) != 1 {
		t.Errorf("equal-count bins = %v", bins)
	}
	empty := binEqualCount(ts, 100, 0.2, 2)
	if len(empty[0]) != 0 || len(empty[1]) != 0 {
		t.Errorf("out-of-window bins should be empty: %v", empty)
	}
}
