package uplink

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/csi"
	"repro/internal/dsp"
)

// Transmission detection (§3.2): "the Wi-Fi reader correlates with the
// preamble along every sub-channel ... while waiting for an incoming
// transmission. When a transmission arrives (which is identified by a peak
// in the correlation) ...". FindTransmission scans a time range for the
// tag's Barker preamble and returns the aligned start time, letting the
// reader decode responses whose exact timing it does not know.

// Detection is confirmed when this many channels correlate at once —
// single-channel noise correlations are common (σ ≈ 0.28 over 13 bins),
// and the scan's many candidate offsets inflate the noise tail further,
// hence the higher bar than one-shot ACK detection.
const syncChannelRank = 9 // tenth-best (0-indexed)

// syncThreshold is the per-channel correlation floor for the rank test.
const syncThreshold = 0.8

// FindTransmission scans [from, to) for a preamble-aligned transmission
// start, on a grid of a quarter bit period. It returns the best-aligned
// start time and whether the detection criterion was met. The scan only
// inspects the preamble's 13 bits, so it works for any payload length.
func (d *Decoder) FindTransmission(s *csi.Series, from, to float64) (start float64, found bool, err error) {
	if s.Len() == 0 {
		return 0, false, fmt.Errorf("uplink: empty measurement series")
	}
	if !(to > from) {
		return 0, false, fmt.Errorf("uplink: empty scan range [%v, %v)", from, to)
	}
	bitDur := d.cfg.BitDuration
	preambleDur := float64(len(preambleLevels)) * bitDur
	ts := s.Timestamps()
	// Condition every channel once over the scan region (with margin for
	// the moving-average window).
	margin := d.cfg.windowFor(len(preambleLevels))
	lo, hi := frameRange(ts, from-margin, to+preambleDur+margin)
	if hi-lo < len(preambleLevels) {
		return 0, false, nil
	}
	tsR := ts[lo:hi]
	window := windowSamples(tsR, d.cfg.windowFor(len(preambleLevels)))
	type condChannel struct {
		cond []float64
	}
	var channels []condChannel
	for a := 0; a < s.Antennas(); a++ {
		for k := 0; k < s.Subchannels(); k++ {
			raw, cerr := s.CSIChannel(a, k)
			if cerr != nil {
				return 0, false, cerr
			}
			channels = append(channels, condChannel{
				cond: dsp.Condition(raw[lo:hi], window),
			})
		}
	}
	// Common-mode rejection: per-packet AGC noise moves every channel
	// identically and would correlate on all of them at once, which is
	// exactly what the many-channel rank test is meant to exclude. The
	// tag's couplings have random signs across channels, so subtracting
	// the per-sample cross-channel mean removes the common mode while
	// barely touching the signal.
	n := len(channels[0].cond)
	for i := 0; i < n; i++ {
		var mean float64
		for ci := range channels {
			mean += channels[ci].cond[i]
		}
		mean /= float64(len(channels))
		for ci := range channels {
			channels[ci].cond[i] -= mean
		}
	}
	// Scan candidate starts on a quarter-bit grid.
	bestScore := 0.0
	bestStart := 0.0
	step := bitDur / 4
	corrs := make([]float64, len(channels))
	for cand := from; cand < to; cand += step {
		bins := binByTimestamp(tsR, cand, bitDur, len(preambleLevels))
		for ci := range channels {
			corrs[ci] = math.Abs(preambleCorr(channels[ci].cond, bins))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(corrs)))
		rank := syncChannelRank
		if rank >= len(corrs) {
			rank = len(corrs) - 1
		}
		if corrs[rank] > bestScore {
			bestScore = corrs[rank]
			bestStart = cand
		}
	}
	return bestStart, bestScore >= syncThreshold, nil
}

// preambleCorr computes the normalized correlation of per-bin means
// against the Barker template.
func preambleCorr(cond []float64, bins [][]int) float64 {
	var dot, mm, pp float64
	for j := 0; j < len(preambleLevels) && j < len(bins); j++ {
		if len(bins[j]) == 0 {
			continue
		}
		var sum float64
		for _, idx := range bins[j] {
			sum += cond[idx]
		}
		mean := sum / float64(len(bins[j]))
		dot += mean * preambleLevels[j]
		mm += mean * mean
		pp += preambleLevels[j] * preambleLevels[j]
	}
	if mm == 0 || pp == 0 {
		return 0
	}
	return dot / math.Sqrt(mm*pp)
}
