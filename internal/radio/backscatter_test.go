package radio

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/rng"
	"repro/internal/units"
)

func testGeometry(tagReader units.Meters) Geometry {
	return Geometry{HelperToTag: 3, TagToReader: tagReader}
}

func TestNewChannelValidation(t *testing.T) {
	cfg := DefaultChannelConfig()
	if _, err := NewChannel(cfg, Geometry{}, rng.New(1)); err == nil {
		t.Error("zero geometry should error")
	}
	bad := cfg
	bad.Subchannels = 0
	if _, err := NewChannel(bad, testGeometry(0.05), rng.New(1)); err == nil {
		t.Error("zero subchannels should error")
	}
	bad = cfg
	bad.Antennas = 0
	if _, err := NewChannel(bad, testGeometry(0.05), rng.New(1)); err == nil {
		t.Error("zero antennas should error")
	}
}

func TestChannelShape(t *testing.T) {
	cfg := DefaultChannelConfig()
	ch, err := NewChannel(cfg, testGeometry(0.05), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if ch.Subchannels() != 30 || ch.Antennas() != 3 {
		t.Fatalf("shape = (%d, %d), want (30, 3)", ch.Subchannels(), ch.Antennas())
	}
	obs := ch.Observe(0, false)
	if len(obs) != 3 || len(obs[0]) != 30 {
		t.Fatalf("Observe shape = (%d, %d)", len(obs), len(obs[0]))
	}
}

func TestModulationDepthFallsWithDistance(t *testing.T) {
	cfg := DefaultChannelConfig()
	near, _ := NewChannel(cfg, testGeometry(0.05), rng.New(3))
	far, _ := NewChannel(cfg, testGeometry(0.65), rng.New(3))
	dn, df := near.ModulationDepth(), far.ModulationDepth()
	if dn <= df {
		t.Fatalf("depth should fall with distance: near %v, far %v", dn, df)
	}
	// Amplitude scales as 1/d: 65/5 = 13x.
	if ratio := dn / df; math.Abs(ratio-13) > 0.5 {
		t.Errorf("depth ratio = %v, want ~13", ratio)
	}
}

func TestModulationDepthMagnitude(t *testing.T) {
	// At 5 cm the backscatter term should be a visible fraction of the
	// direct channel (Fig. 3 shows a clear binary modulation), roughly
	// 10–60%.
	cfg := DefaultChannelConfig()
	ch, _ := NewChannel(cfg, testGeometry(0.05), rng.New(4))
	d := ch.ModulationDepth()
	if d < 0.05 || d > 1 {
		t.Errorf("modulation depth at 5 cm = %v, want within [0.05, 1]", d)
	}
}

func TestObserveStatesDiffer(t *testing.T) {
	cfg := DefaultChannelConfig()
	ch, _ := NewChannel(cfg, testGeometry(0.05), rng.New(5))
	on := ch.Observe(0, true)
	off := ch.Observe(0, false)
	var diff, base float64
	for a := range on {
		for k := range on[a] {
			diff += cmplx.Abs(on[a][k] - off[a][k])
			base += cmplx.Abs(off[a][k])
		}
	}
	if diff == 0 {
		t.Fatal("reflecting and absorbing states are identical")
	}
	if diff/base < 0.01 {
		t.Errorf("state contrast too small: %v", diff/base)
	}
}

func TestObserveDeterministicAtSameTime(t *testing.T) {
	cfg := DefaultChannelConfig()
	ch, _ := NewChannel(cfg, testGeometry(0.1), rng.New(6))
	a := ch.Observe(1.5, true)
	b := ch.Observe(1.5, true)
	for ant := range a {
		for k := range a[ant] {
			if a[ant][k] != b[ant][k] {
				t.Fatalf("same-time observations differ at [%d][%d]", ant, k)
			}
		}
	}
}

func TestObserveDriftsOverTime(t *testing.T) {
	cfg := DefaultChannelConfig()
	ch, _ := NewChannel(cfg, testGeometry(0.1), rng.New(7))
	a := ch.Observe(0, false)
	ch.Observe(5, false) // advance
	b := ch.Observe(10, false)
	var diff float64
	for ant := range a {
		for k := range a[ant] {
			diff += cmplx.Abs(a[ant][k] - b[ant][k])
		}
	}
	if diff == 0 {
		t.Error("channel did not drift over 10 s")
	}
}

func TestHelperWallsReduceDirectAmplitude(t *testing.T) {
	cfg := DefaultChannelConfig()
	geoLOS := testGeometry(0.05)
	geoNLOS := geoLOS
	geoNLOS.HelperWalls = 2
	los, _ := NewChannel(cfg, geoLOS, rng.New(8))
	nlos, _ := NewChannel(cfg, geoNLOS, rng.New(8))
	if nlos.ampDir >= los.ampDir {
		t.Errorf("walls should attenuate direct path: %v >= %v", nlos.ampDir, los.ampDir)
	}
	// Walls hit the helper→tag hop too, so modulation depth (the ratio)
	// is preserved.
	if math.Abs(nlos.ModulationDepth()-los.ModulationDepth()) > 1e-12 {
		t.Errorf("modulation depth changed with walls: %v vs %v",
			nlos.ModulationDepth(), los.ModulationDepth())
	}
}

func TestHelperReaderOverride(t *testing.T) {
	g := Geometry{HelperToTag: 3, TagToReader: 0.05}
	if g.helperReader() != 3 {
		t.Errorf("derived helper-reader distance = %v, want 3", g.helperReader())
	}
	g.HelperToReader = 7
	if g.helperReader() != 7 {
		t.Errorf("explicit helper-reader distance = %v, want 7", g.helperReader())
	}
}

func TestSubchannelOffsetsCentered(t *testing.T) {
	cfg := DefaultChannelConfig()
	ch, _ := NewChannel(cfg, testGeometry(0.05), rng.New(9))
	var sum units.Hertz
	for _, f := range ch.offsets {
		sum += f
	}
	if math.Abs(float64(sum)) > 1 {
		t.Errorf("subchannel offsets not centered: sum = %v", sum)
	}
	span := float64(ch.offsets[len(ch.offsets)-1] - ch.offsets[0])
	if math.Abs(span-29*625e3) > 1 {
		t.Errorf("offset span = %v Hz, want 18.125 MHz", span)
	}
}

func TestDifferentialGainScalesWithElements(t *testing.T) {
	lambda := (2.437 * units.GHz).Wavelength()
	a1 := TagAntenna{Elements: 1, ElementDeltaGamma: 1, ElementAperture: 1.3e-3}
	a6 := a1
	a6.Elements = 6
	if g1, g6 := a1.DifferentialGain(lambda), a6.DifferentialGain(lambda); math.Abs(g6/g1-6) > 1e-9 {
		t.Errorf("gain should scale linearly with elements: %v / %v", g6, g1)
	}
	if (TagAntenna{}).DifferentialGain(lambda) != 0 {
		t.Error("zero-element antenna should have zero gain")
	}
}

func TestHarvestedPowerAtOneFoot(t *testing.T) {
	// §6: the harvester can run the 9.65 µW transmit+receive circuits
	// continuously at one foot (0.3048 m) from the Wi-Fi reader
	// (+16 dBm). The model should deliver at least that.
	a := DefaultTagAntenna()
	got := a.HarvestedPower(16, 0.3048)
	if got < 9.65 {
		t.Errorf("harvested power at 1 ft = %v µW, want >= 9.65", got)
	}
	// And far less at 3 m.
	far := a.HarvestedPower(16, 3)
	if far >= got/50 {
		t.Errorf("harvested power should fall as 1/d²: %v µW at 3 m", far)
	}
	if a.HarvestedPower(16, 0) != 0 {
		t.Error("zero distance should harvest zero (guard)")
	}
}
