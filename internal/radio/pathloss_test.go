package radio

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestFreeSpaceAmplitudeGain(t *testing.T) {
	lambda := (2.437 * units.GHz).Wavelength()
	g := FreeSpaceAmplitudeGain(1, lambda)
	want := float64(lambda) / (4 * math.Pi)
	if math.Abs(g-want) > 1e-12 {
		t.Errorf("gain at 1 m = %v, want %v", g, want)
	}
	// Amplitude falls as 1/d.
	g2 := FreeSpaceAmplitudeGain(2, lambda)
	if math.Abs(g/g2-2) > 1e-9 {
		t.Errorf("amplitude ratio 1m/2m = %v, want 2", g/g2)
	}
	if FreeSpaceAmplitudeGain(0, lambda) != 0 {
		t.Error("zero distance should give zero gain")
	}
	if FreeSpaceAmplitudeGain(1, 0) != 0 {
		t.Error("zero wavelength should give zero gain")
	}
}

func TestFreeSpacePathLossKnownValue(t *testing.T) {
	// FSPL at 2.437 GHz, 2.13 m is about 46.7 dB.
	got := FreeSpacePathLoss(2.13, 2.437*units.GHz)
	if math.Abs(float64(got)-46.7) > 0.2 {
		t.Errorf("FSPL(2.13 m) = %v, want ~46.7 dB", got)
	}
	if !math.IsInf(float64(FreeSpacePathLoss(0, 2.437*units.GHz)), 1) {
		t.Error("FSPL at zero distance should be +inf")
	}
}

func TestLogDistanceMonotone(t *testing.T) {
	m := DefaultIndoor()
	prev := units.DB(-1)
	for _, d := range []units.Meters{1, 2, 3, 5, 9} {
		loss := m.Loss(d, 0)
		if loss <= prev {
			t.Errorf("loss not monotone at %v: %v <= %v", d, loss, prev)
		}
		prev = loss
	}
}

func TestLogDistanceWalls(t *testing.T) {
	m := DefaultIndoor()
	noWall := m.Loss(5, 0)
	oneWall := m.Loss(5, 1)
	if got := oneWall - noWall; math.Abs(float64(got-m.WallLoss)) > 1e-9 {
		t.Errorf("wall penalty = %v, want %v", got, m.WallLoss)
	}
}

func TestLogDistanceReference(t *testing.T) {
	m := DefaultIndoor()
	ref := FreeSpacePathLoss(m.RefDistance, m.Frequency)
	if got := m.Loss(m.RefDistance, 0); math.Abs(float64(got-ref)) > 1e-9 {
		t.Errorf("loss at reference distance = %v, want FSPL %v", got, ref)
	}
	if got := m.Loss(0, 0); got != 0 {
		t.Errorf("loss at zero distance = %v, want 0", got)
	}
}

func TestLogDistanceExponentDefault(t *testing.T) {
	m := LogDistance{RefDistance: 1, Frequency: 2.437 * units.GHz}
	// Exponent 0 falls back to 2 (free space slope).
	l1 := m.Loss(1, 0)
	l10 := m.Loss(10, 0)
	if got := float64(l10 - l1); math.Abs(got-20) > 1e-9 {
		t.Errorf("decade slope with default exponent = %v dB, want 20", got)
	}
}

func TestAmplitudeGainConsistency(t *testing.T) {
	m := DefaultIndoor()
	d := units.Meters(4)
	g := m.AmplitudeGain(d, 0)
	loss := m.Loss(d, 0)
	if gotDB := -20 * math.Log10(g); math.Abs(gotDB-float64(loss)) > 1e-9 {
		t.Errorf("amplitude gain inconsistent with loss: %v vs %v", gotDB, loss)
	}
}

func TestThermalNoise(t *testing.T) {
	// kTB for 20 MHz is about -101 dBm; with a 6 dB noise figure, -95 dBm.
	got := ThermalNoiseDBm(20*units.MHz, 6)
	if math.Abs(float64(got)-(-95)) > 0.2 {
		t.Errorf("thermal noise = %v, want ~-95 dBm", got)
	}
}
