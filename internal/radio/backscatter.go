package radio

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/units"
)

// Geometry places the three actors of a Wi-Fi Backscatter link. Distances
// follow the paper's experiments: the helper sits meters away while the
// tag-reader distance is the swept variable.
type Geometry struct {
	// HelperToTag is the helper→tag distance (3 m in most experiments).
	HelperToTag units.Meters
	// TagToReader is the tag→reader distance (5–65 cm short range).
	TagToReader units.Meters
	// HelperToReader is the direct helper→reader distance. Zero means
	// "derive": the reader is next to the tag, so it defaults to
	// HelperToTag.
	HelperToReader units.Meters
	// HelperWalls counts walls between helper and the tag/reader area
	// (location 5 in Fig. 13 is in a different room).
	HelperWalls int
}

// helperReader returns the effective helper→reader distance.
func (g Geometry) helperReader() units.Meters {
	if g.HelperToReader > 0 {
		return g.HelperToReader
	}
	return g.HelperToTag
}

// ChannelConfig configures the composite backscatter channel observed by
// the reader.
type ChannelConfig struct {
	// Subchannels is the number of OFDM sub-channels reported (Intel
	// 5300: 30).
	Subchannels int
	// SubchannelSpacing between reported sub-channels (625 kHz for the
	// 5300's grouping of the 20 MHz band).
	SubchannelSpacing units.Hertz
	// Antennas at the reader (Intel 5300: 3).
	Antennas int
	// Carrier frequency.
	Carrier units.Hertz
	// PathLoss is the room-scale propagation model for the direct path.
	PathLoss LogDistance
	// Multipath parameterizes the small-scale fading of every
	// constituent channel.
	Multipath MultipathConfig
	// Antenna is the tag's antenna/RCS model.
	Antenna TagAntenna
	// CSIScale converts field amplitude at the reader into the Intel
	// card's dimensionless CSI units.
	CSIScale float64
}

// DefaultChannelConfig returns the configuration that reproduces the
// paper's testbed (channel 6, Intel 5300 reader).
func DefaultChannelConfig() ChannelConfig {
	return ChannelConfig{
		Subchannels:       30,
		SubchannelSpacing: 625 * units.KHz,
		Antennas:          3,
		Carrier:           2.437 * units.GHz,
		PathLoss:          DefaultIndoor(),
		Multipath:         DefaultMultipathConfig(),
		Antenna:           DefaultTagAntenna(),
		CSIScale:          5000,
	}
}

// Channel is the composite uplink channel
//
//	H[a][k] = H_direct[a](f_k) + s · A · H_ht(f_k) · H_tr[a](f_k)
//
// where s ∈ {0, 1} is the tag's switch state, A is the product of the two
// hop path gains and the tag's differential scattering gain, a indexes
// reader antennas, and k indexes sub-channels. Observe evolves the fading
// processes to the query time and returns the complex response the reader's
// card will measure.
type Channel struct {
	cfg      ChannelConfig
	geo      Geometry
	offsets  []units.Hertz
	direct   []*Multipath // per antenna
	tagRead  []*Multipath // per antenna
	helpTag  *Multipath
	ampBack  float64 // amplitude scale of the backscatter term
	ampDir   float64 // amplitude scale of the direct term
	scale    float64 // CSI unit conversion
	antennas int
}

// NewChannel draws a channel realization for the given geometry. Distances
// must be positive.
func NewChannel(cfg ChannelConfig, geo Geometry, stream *rng.Stream) (*Channel, error) {
	if cfg.Subchannels <= 0 || cfg.Antennas <= 0 {
		return nil, fmt.Errorf("radio: channel needs positive subchannels and antennas, got %d, %d",
			cfg.Subchannels, cfg.Antennas)
	}
	if geo.HelperToTag <= 0 || geo.TagToReader <= 0 {
		return nil, fmt.Errorf("radio: geometry distances must be positive: %+v", geo)
	}
	c := &Channel{
		cfg:      cfg,
		geo:      geo,
		scale:    cfg.CSIScale,
		antennas: cfg.Antennas,
	}
	c.offsets = make([]units.Hertz, cfg.Subchannels)
	for k := range c.offsets {
		c.offsets[k] = units.Hertz(float64(k)-float64(cfg.Subchannels-1)/2) * cfg.SubchannelSpacing
	}
	c.direct = make([]*Multipath, cfg.Antennas)
	c.tagRead = make([]*Multipath, cfg.Antennas)
	for a := 0; a < cfg.Antennas; a++ {
		c.direct[a] = NewMultipath(cfg.Multipath, stream.Split(fmt.Sprintf("direct-%d", a)))
		// The short tag→reader hop is dominated by its line of sight;
		// keep frequency structure but raise the K factor.
		trCfg := cfg.Multipath
		trCfg.RiceK = 10
		c.tagRead[a] = NewMultipath(trCfg, stream.Split(fmt.Sprintf("tagread-%d", a)))
	}
	c.helpTag = NewMultipath(cfg.Multipath, stream.Split("helptag"))

	lambda := cfg.Carrier.Wavelength()
	// Direct path: room-scale model with walls.
	c.ampDir = c.cfg.PathLoss.AmplitudeGain(geo.helperReader(), geo.HelperWalls)
	// Backscatter path: helper→tag (room-scale, walls) then tag→reader
	// (short free-space hop), times the tag's differential gain.
	gHT := c.cfg.PathLoss.AmplitudeGain(geo.HelperToTag, geo.HelperWalls)
	gTR := FreeSpaceAmplitudeGain(geo.TagToReader, lambda)
	c.ampBack = gHT * gTR * cfg.Antenna.DifferentialGain(lambda)
	return c, nil
}

// Subchannels returns the number of sub-channels.
func (c *Channel) Subchannels() int { return len(c.offsets) }

// Antennas returns the number of reader antennas.
func (c *Channel) Antennas() int { return c.antennas }

// ModulationDepth returns the ratio of backscatter to direct amplitude
// scale — a quick figure of merit for link strength at this geometry.
func (c *Channel) ModulationDepth() float64 {
	if c.ampDir == 0 {
		return 0
	}
	return c.ampBack / c.ampDir
}

// Observe returns the composite complex channel in CSI units at absolute
// time t (seconds) with the tag's switch reflecting (true) or absorbing
// (false). The result is indexed [antenna][subchannel]. The returned
// slices are freshly allocated.
func (c *Channel) Observe(t float64, reflecting bool) [][]complex128 {
	c.helpTag.EvolveTo(t)
	out := make([][]complex128, c.antennas)
	for a := 0; a < c.antennas; a++ {
		c.direct[a].EvolveTo(t)
		c.tagRead[a].EvolveTo(t)
		row := make([]complex128, len(c.offsets))
		for k, f := range c.offsets {
			h := c.direct[a].Response(f) * complex(c.ampDir, 0)
			if reflecting {
				h += c.helpTag.Response(f) * c.tagRead[a].Response(f) * complex(c.ampBack, 0)
			}
			row[k] = h * complex(c.scale, 0)
		}
		out[a] = row
	}
	return out
}
