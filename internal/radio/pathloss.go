// Package radio models the 2.4 GHz physical layer that the Wi-Fi
// Backscatter hardware prototype operated over: free-space and log-distance
// path loss, frequency-selective multipath fading across the OFDM band,
// slow temporal channel variation from environment mobility, thermal noise,
// the tag's antenna/radar-cross-section, and the composite backscatter
// channel
//
//	H(f) = H_direct(f) + Γ_state · A · H_helper→tag(f) · H_tag→reader(f)
//
// observed by a Wi-Fi reader. This package substitutes for the paper's
// over-the-air testbed (see DESIGN.md §2); the decoding algorithms built on
// top of it are the paper's own.
package radio

import (
	"math"

	"repro/internal/units"
)

// FreeSpaceAmplitudeGain returns the linear amplitude (field) gain of a
// free-space path of length d at wavelength lambda: λ/(4πd). It returns 0
// for non-positive distances or wavelengths, which callers treat as a dead
// path.
func FreeSpaceAmplitudeGain(d units.Meters, lambda units.Meters) float64 {
	if d <= 0 || lambda <= 0 {
		return 0
	}
	return float64(lambda) / (4 * math.Pi * float64(d))
}

// FreeSpacePathLoss returns the free-space path loss in dB (a positive
// number) for distance d at frequency f.
func FreeSpacePathLoss(d units.Meters, f units.Hertz) units.DB {
	g := FreeSpaceAmplitudeGain(d, f.Wavelength())
	if g == 0 {
		return units.DB(math.Inf(1))
	}
	return units.DB(-20 * math.Log10(g))
}

// LogDistance models indoor path loss with a reference-distance form:
// PL(d) = PL(d0) + 10·n·log10(d/d0) + walls·WallLoss. Exponent n ≈ 2 is
// free space; indoor non-line-of-sight environments measure n ≈ 2.5–4.
type LogDistance struct {
	// Exponent is the path-loss exponent n.
	Exponent float64
	// RefDistance d0, usually 1 m.
	RefDistance units.Meters
	// Frequency of the carrier, used for the reference loss.
	Frequency units.Hertz
	// WallLoss is the attenuation per intervening wall.
	WallLoss units.DB
}

// DefaultIndoor returns a log-distance model representative of the paper's
// office testbed on Wi-Fi channel 6.
func DefaultIndoor() LogDistance {
	return LogDistance{
		Exponent:    2.8,
		RefDistance: units.Meters(1),
		Frequency:   2.437 * units.GHz,
		WallLoss:    units.DB(6),
	}
}

// Loss returns the path loss in dB over distance d through the given number
// of walls.
func (m LogDistance) Loss(d units.Meters, walls int) units.DB {
	if d <= 0 {
		return 0
	}
	ref := FreeSpacePathLoss(m.RefDistance, m.Frequency)
	n := m.Exponent
	if n == 0 {
		n = 2
	}
	loss := float64(ref) + 10*n*math.Log10(float64(d)/float64(m.RefDistance))
	if loss < 0 {
		loss = 0 // closer than the reference distance saturates at 0 loss
	}
	return units.DB(loss) + units.DB(walls)*m.WallLoss
}

// AmplitudeGain returns the linear amplitude gain for the modelled path.
func (m LogDistance) AmplitudeGain(d units.Meters, walls int) float64 {
	return units.DB(-m.Loss(d, walls)).AmplitudeRatio()
}

// ThermalNoiseDBm returns the thermal noise floor kTB in dBm for the given
// bandwidth plus a receiver noise figure.
func ThermalNoiseDBm(bandwidth units.Hertz, noiseFigure units.DB) units.DBm {
	// kT at 290 K is -174 dBm/Hz.
	return units.DBm(-174 + 10*math.Log10(float64(bandwidth))).Add(noiseFigure)
}
