package radio

import (
	"math"
	"math/cmplx"

	"repro/internal/rng"
	"repro/internal/units"
)

// Multipath models a frequency-selective fading channel as a tap delay line
// with an exponential power-delay profile. Its frequency response is
// evaluated at arbitrary subcarrier offsets, and the taps evolve in time as
// an AR(1) (Gauss-Markov) process so the channel drifts slowly, as an
// indoor environment with people moving does.
type Multipath struct {
	taps      []complex128
	delays    []float64 // seconds
	powers    []float64 // stationary power of each scattered tap
	coherence float64   // seconds; time for correlation to fall to 1/e
	lastTime  float64   // seconds of last evolution
	stream    *rng.Stream
	// los holds the optional fixed line-of-sight component of tap 0.
	los complex128
}

// MultipathConfig configures a Multipath channel.
type MultipathConfig struct {
	// Taps is the number of scattered paths (>= 1).
	Taps int
	// DelaySpread is the RMS delay spread; indoor offices measure
	// 30–100 ns.
	DelaySpread float64 // seconds
	// RiceK is the Rician K-factor (linear power ratio of the LOS
	// component to the scattered power). 0 means pure Rayleigh.
	RiceK float64
	// CoherenceTime is the 1/e temporal decorrelation time of the taps.
	// Zero disables temporal evolution (a static channel).
	CoherenceTime float64 // seconds
}

// DefaultMultipathConfig returns parameters representative of the paper's
// office environment.
func DefaultMultipathConfig() MultipathConfig {
	return MultipathConfig{
		Taps:          8,
		DelaySpread:   60e-9,
		RiceK:         4,
		CoherenceTime: 300,
	}
}

// NewMultipath draws a random channel realization from the config using the
// given stream. Total average power is normalized to 1 (E[|H(f)|²] = 1), so
// large-scale path gain is applied separately.
func NewMultipath(cfg MultipathConfig, stream *rng.Stream) *Multipath {
	n := cfg.Taps
	if n < 1 {
		n = 1
	}
	m := &Multipath{
		taps:      make([]complex128, n),
		delays:    make([]float64, n),
		coherence: cfg.CoherenceTime,
		stream:    stream,
	}
	// Exponential power delay profile over taps spaced at half the delay
	// spread, which yields an RMS delay spread close to cfg.DelaySpread.
	spacing := cfg.DelaySpread / 2
	if spacing <= 0 {
		spacing = 1e-9
	}
	var totalScatter float64
	powers := make([]float64, n)
	for i := 0; i < n; i++ {
		m.delays[i] = float64(i) * spacing
		if cfg.DelaySpread > 0 {
			powers[i] = math.Exp(-m.delays[i] / cfg.DelaySpread)
		} else {
			powers[i] = 1
		}
		totalScatter += powers[i]
	}
	// Split unit power between LOS and scatter according to K.
	scatterPower := 1.0
	losPower := 0.0
	if cfg.RiceK > 0 {
		losPower = cfg.RiceK / (1 + cfg.RiceK)
		scatterPower = 1 / (1 + cfg.RiceK)
	}
	m.powers = make([]float64, n)
	for i := 0; i < n; i++ {
		m.powers[i] = powers[i] / totalScatter * scatterPower
		m.taps[i] = stream.ComplexGaussian(m.powers[i])
	}
	if losPower > 0 {
		phase := stream.Float64() * 2 * math.Pi
		m.los = cmplx.Rect(math.Sqrt(losPower), phase)
	}
	return m
}

// EvolveTo advances the channel's scattered taps to absolute time t seconds
// using a Gauss-Markov innovation whose correlation decays with the
// coherence time. Times earlier than the last evolution are ignored.
func (m *Multipath) EvolveTo(t float64) {
	if m.coherence <= 0 || t <= m.lastTime {
		if t > m.lastTime {
			m.lastTime = t
		}
		return
	}
	dt := t - m.lastTime
	m.lastTime = t
	rho := math.Exp(-dt / m.coherence)
	innov := math.Sqrt(1 - rho*rho)
	for i, tap := range m.taps {
		// The innovation variance matches the tap's stationary power so
		// the power-delay profile is invariant under evolution.
		m.taps[i] = tap*complex(rho, 0) + m.stream.ComplexGaussian(m.powers[i])*complex(innov, 0)
	}
}

// Response returns the complex channel gain at a frequency offset (Hz) from
// the carrier.
func (m *Multipath) Response(offset units.Hertz) complex128 {
	h := m.los
	for i, tap := range m.taps {
		phase := -2 * math.Pi * float64(offset) * m.delays[i]
		h += tap * cmplx.Rect(1, phase)
	}
	return h
}

// ResponseAt evaluates the response on a set of frequency offsets.
func (m *Multipath) ResponseAt(offsets []units.Hertz) []complex128 {
	out := make([]complex128, len(offsets))
	for i, f := range offsets {
		out[i] = m.Response(f)
	}
	return out
}
