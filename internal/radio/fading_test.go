package radio

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/dsp"
	"repro/internal/rng"
	"repro/internal/units"
)

func TestMultipathUnitAveragePower(t *testing.T) {
	// Average |H(0)|² over many realizations should be ~1.
	cfg := DefaultMultipathConfig()
	stream := rng.New(1)
	const n = 5000
	var pow float64
	for i := 0; i < n; i++ {
		m := NewMultipath(cfg, stream.Split("x"))
		h := m.Response(0)
		pow += real(h)*real(h) + imag(h)*imag(h)
	}
	if got := pow / n; math.Abs(got-1) > 0.1 {
		t.Errorf("average channel power = %v, want ~1", got)
	}
}

func TestMultipathFrequencySelectivity(t *testing.T) {
	// With a 60 ns delay spread, responses 10 MHz apart should differ
	// noticeably for most realizations.
	cfg := DefaultMultipathConfig()
	cfg.RiceK = 0 // pure Rayleigh for maximum selectivity
	stream := rng.New(2)
	differ := 0
	const n = 200
	for i := 0; i < n; i++ {
		m := NewMultipath(cfg, stream.Split("y"))
		a := cmplx.Abs(m.Response(-10 * units.MHz))
		b := cmplx.Abs(m.Response(+10 * units.MHz))
		if math.Abs(a-b) > 0.1*(a+b)/2 {
			differ++
		}
	}
	if differ < n/3 {
		t.Errorf("only %d/%d realizations showed frequency selectivity", differ, n)
	}
}

func TestMultipathAdjacentSubchannelsCorrelated(t *testing.T) {
	// Responses 625 kHz apart should be nearly identical (coherence
	// bandwidth >> subchannel spacing).
	cfg := DefaultMultipathConfig()
	stream := rng.New(3)
	var diff, mag float64
	const n = 500
	for i := 0; i < n; i++ {
		m := NewMultipath(cfg, stream.Split("z"))
		a := m.Response(0)
		b := m.Response(625 * units.KHz)
		diff += cmplx.Abs(a - b)
		mag += cmplx.Abs(a)
	}
	// Ensemble-average difference should be a small fraction of the
	// magnitude (coherence bandwidth >> 625 kHz).
	if diff/mag > 0.15 {
		t.Errorf("adjacent subchannels decorrelated: mean diff/mag = %v", diff/mag)
	}
}

func TestMultipathStaticWithoutCoherence(t *testing.T) {
	cfg := DefaultMultipathConfig()
	cfg.CoherenceTime = 0
	m := NewMultipath(cfg, rng.New(4))
	before := m.Response(1 * units.MHz)
	m.EvolveTo(100)
	after := m.Response(1 * units.MHz)
	if before != after {
		t.Errorf("static channel changed: %v -> %v", before, after)
	}
}

func TestMultipathEvolutionDecorrelates(t *testing.T) {
	cfg := DefaultMultipathConfig()
	cfg.RiceK = 0
	cfg.CoherenceTime = 1
	stream := rng.New(5)
	var shortDiff, longDiff float64
	const n = 300
	for i := 0; i < n; i++ {
		m := NewMultipath(cfg, stream.Split("e"))
		h0 := m.Response(0)
		m.EvolveTo(0.01) // 10 ms: nearly unchanged
		h1 := m.Response(0)
		shortDiff += cmplx.Abs(h1 - h0)
		m.EvolveTo(10) // 10 coherence times: fully decorrelated
		h2 := m.Response(0)
		longDiff += cmplx.Abs(h2 - h0)
	}
	if shortDiff/float64(n) > 0.2 {
		t.Errorf("channel moved too much in 10 ms: mean diff %v", shortDiff/float64(n))
	}
	if longDiff/float64(n) < 0.5 {
		t.Errorf("channel did not decorrelate after 10 s: mean diff %v", longDiff/float64(n))
	}
}

func TestMultipathEvolutionPreservesPower(t *testing.T) {
	cfg := DefaultMultipathConfig()
	cfg.RiceK = 0
	stream := rng.New(6)
	var pow float64
	const n = 2000
	for i := 0; i < n; i++ {
		m := NewMultipath(cfg, stream.Split("p"))
		m.EvolveTo(50) // many coherence times
		h := m.Response(0)
		pow += real(h)*real(h) + imag(h)*imag(h)
	}
	if got := pow / n; math.Abs(got-1) > 0.15 {
		t.Errorf("power after long evolution = %v, want ~1", got)
	}
}

func TestMultipathEvolveBackwardsIgnored(t *testing.T) {
	m := NewMultipath(DefaultMultipathConfig(), rng.New(7))
	m.EvolveTo(5)
	h := m.Response(0)
	m.EvolveTo(3) // earlier time: no-op
	if got := m.Response(0); got != h {
		t.Errorf("backwards evolution changed channel")
	}
}

func TestMultipathRicianLOSRaisesStability(t *testing.T) {
	// A strong LOS should reduce the spread of |H| across realizations.
	stream := rng.New(8)
	spread := func(k float64) float64 {
		cfg := DefaultMultipathConfig()
		cfg.RiceK = k
		var mags []float64
		for i := 0; i < 500; i++ {
			m := NewMultipath(cfg, stream.Split("k"))
			mags = append(mags, cmplx.Abs(m.Response(0)))
		}
		var mean, varsum float64
		for _, v := range mags {
			mean += v
		}
		mean /= float64(len(mags))
		for _, v := range mags {
			varsum += (v - mean) * (v - mean)
		}
		return varsum / float64(len(mags)) / (mean * mean)
	}
	if sLow, sHigh := spread(0), spread(20); sHigh >= sLow {
		t.Errorf("Rician K=20 spread %v should be below Rayleigh spread %v", sHigh, sLow)
	}
}

func TestMultipathSingleTap(t *testing.T) {
	cfg := MultipathConfig{Taps: 1, DelaySpread: 0, RiceK: 0, CoherenceTime: 0}
	m := NewMultipath(cfg, rng.New(9))
	// A single tap at delay 0 is frequency flat.
	a := m.Response(-10 * units.MHz)
	b := m.Response(+10 * units.MHz)
	if cmplx.Abs(a-b) > 1e-12 {
		t.Errorf("single-tap channel not flat: %v vs %v", a, b)
	}
}

func TestMultipathZeroTapsClamped(t *testing.T) {
	cfg := MultipathConfig{Taps: 0, DelaySpread: 10e-9}
	m := NewMultipath(cfg, rng.New(10))
	if got := m.Response(0); got == 0 {
		t.Error("clamped channel should still have one tap")
	}
}

func TestMultipathCoherenceBandwidth(t *testing.T) {
	// With a 60 ns delay spread, the 50% coherence bandwidth is around
	// 1/(5·τ) ≈ 3 MHz — a handful of 625 kHz sub-channel bins. Validate
	// the model's frequency autocorrelation against that.
	cfg := DefaultMultipathConfig()
	cfg.RiceK = 0 // scatter only: the LOS floor masks decorrelation
	stream := rng.New(77)
	offsets := make([]units.Hertz, 30)
	for k := range offsets {
		offsets[k] = units.Hertz(float64(k)-14.5) * 625 * units.KHz
	}
	var bins []float64
	for trial := 0; trial < 60; trial++ {
		m := NewMultipath(cfg, stream.Split("cb"))
		h := m.ResponseAt(offsets)
		bins = append(bins, float64(dsp.CoherenceBandwidthBins(h, 0.5)))
	}
	var mean float64
	for _, b := range bins {
		mean += b
	}
	mean /= float64(len(bins))
	// 3 MHz / 625 kHz ≈ 5 bins; accept a broad band around it.
	if mean < 2 || mean > 20 {
		t.Errorf("mean coherence bandwidth = %.1f bins, want ~5 (2-20)", mean)
	}
}
