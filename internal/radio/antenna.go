package radio

import (
	"math"

	"repro/internal/units"
)

// TagAntenna models the prototype's patch-antenna array (§6, Fig. 9): six
// micro-strip patch elements that together modulate the radar cross-section
// and harvest RF power. The quantity that matters for the uplink is the
// *differential* scattering amplitude between the two switch states; the
// quantity that matters for power is the effective harvesting aperture.
type TagAntenna struct {
	// Elements is the number of patch elements in the array.
	Elements int
	// ElementDeltaGamma is the per-element differential reflection
	// amplitude |Γ_reflect − Γ_absorb| ∈ [0, 2]; the ADG902 switch's
	// isolation makes this close to 1.
	ElementDeltaGamma float64
	// ElementAperture is each patch's effective aperture in m² for
	// harvesting. A 40.6 × 30.9 mm patch at 2.4 GHz has roughly
	// 1.3e-3 m² of effective area.
	ElementAperture float64
	// RectifierEfficiency is the RF-to-DC conversion efficiency of the
	// SMS7630 full-wave rectifier at the relevant power levels.
	RectifierEfficiency float64
}

// DefaultTagAntenna returns the prototype's antenna parameters.
func DefaultTagAntenna() TagAntenna {
	return TagAntenna{
		Elements:            6,
		ElementDeltaGamma:   1.2,
		ElementAperture:     1.3e-3,
		RectifierEfficiency: 0.25,
	}
}

// DifferentialGain returns the dimensionless amplitude factor applied to
// the product of the two backscatter hop gains. Elements scatter
// coherently, so the differential amplitude grows linearly with the element
// count, scaled to wavelength via the standard aperture-to-gain relation.
func (a TagAntenna) DifferentialGain(lambda units.Meters) float64 {
	if a.Elements <= 0 || lambda <= 0 {
		return 0
	}
	// Gain of one element from its aperture: g = 4πA/λ².
	g := 4 * math.Pi * a.ElementAperture / (float64(lambda) * float64(lambda))
	return float64(a.Elements) * a.ElementDeltaGamma * g / 4
}

// HarvestedPower returns the DC power the tag can extract from an incident
// RF power density created by a transmitter with EIRP p at distance d.
func (a TagAntenna) HarvestedPower(p units.DBm, d units.Meters) units.Microwatt {
	if d <= 0 {
		return 0
	}
	density := float64(p.Milliwatts()) / (4 * math.Pi * float64(d) * float64(d)) // mW/m²
	area := float64(a.Elements) * a.ElementAperture
	return units.Milliwatt(density * area * a.RectifierEfficiency).Microwatts()
}
