package radio

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/rng"
	"repro/internal/units"
)

func newMulti(t *testing.T, dists ...units.Meters) *MultiChannel {
	t.Helper()
	c, err := NewMultiChannel(DefaultChannelConfig(), Geometry{HelperToTag: 3, TagToReader: dists[0]}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dists {
		if _, err := c.AddTag(d); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestMultiChannelValidation(t *testing.T) {
	cfg := DefaultChannelConfig()
	if _, err := NewMultiChannel(cfg, Geometry{}, rng.New(1)); err == nil {
		t.Error("zero helper distance should error")
	}
	bad := cfg
	bad.Antennas = 0
	if _, err := NewMultiChannel(bad, Geometry{HelperToTag: 3}, rng.New(1)); err == nil {
		t.Error("zero antennas should error")
	}
	c, _ := NewMultiChannel(cfg, Geometry{HelperToTag: 3}, rng.New(1))
	if _, err := c.AddTag(0); err == nil {
		t.Error("zero tag distance should error")
	}
}

func TestMultiChannelObserveStateMismatch(t *testing.T) {
	c := newMulti(t, 0.05)
	if _, err := c.Observe(0, []bool{true, false, false}); err == nil {
		t.Error("state count mismatch should error")
	}
}

func TestMultiChannelTagCount(t *testing.T) {
	c := newMulti(t, 0.05, 0.10)
	if c.Tags() != 2 {
		t.Errorf("tags = %d, want 2", c.Tags())
	}
	if c.Subchannels() != 30 || c.Antennas() != 3 {
		t.Errorf("shape = (%d, %d)", c.Subchannels(), c.Antennas())
	}
}

func TestMultiChannelIndependentContributions(t *testing.T) {
	c := newMulti(t, 0.05, 0.05)
	base, err := c.Observe(0, []bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	one, _ := c.Observe(0, []bool{true, false})
	two, _ := c.Observe(0, []bool{false, true})
	both, _ := c.Observe(0, []bool{true, true})
	// Contributions are additive in the complex domain.
	for a := range base {
		for k := range base[a] {
			want := one[a][k] + two[a][k] - base[a][k]
			if cmplx.Abs(want-both[a][k]) > 1e-9*cmplx.Abs(both[a][k]) {
				t.Fatalf("superposition violated at [%d][%d]", a, k)
			}
		}
	}
	// And each tag's contribution differs (independent fading paths).
	var d1, d2 float64
	for a := range base {
		for k := range base[a] {
			d1 += cmplx.Abs(one[a][k] - base[a][k])
			d2 += cmplx.Abs(two[a][k] - base[a][k])
		}
	}
	if d1 == 0 || d2 == 0 {
		t.Fatal("tag contributions missing")
	}
}

func TestMultiChannelDepthFallsWithDistance(t *testing.T) {
	c := newMulti(t, 0.05, 0.65)
	near, far := c.ModulationDepth(0), c.ModulationDepth(1)
	if near <= far {
		t.Errorf("depth should fall with distance: %v vs %v", near, far)
	}
	if math.Abs(near/far-13) > 0.5 {
		t.Errorf("depth ratio = %v, want ~13", near/far)
	}
	if c.ModulationDepth(5) != 0 {
		t.Error("out-of-range tag index should give 0")
	}
}

func TestMultiChannelMatchesSingleChannelScale(t *testing.T) {
	// One-tag MultiChannel and the single-tag Channel share the same
	// link-budget scales.
	cfg := DefaultChannelConfig()
	geo := Geometry{HelperToTag: 3, TagToReader: 0.05}
	single, err := NewChannel(cfg, geo, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	multi, err := NewMultiChannel(cfg, geo, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := multi.AddTag(0.05); err != nil {
		t.Fatal(err)
	}
	if s, m := single.ModulationDepth(), multi.ModulationDepth(0); math.Abs(s-m) > 1e-12 {
		t.Errorf("modulation depth mismatch: %v vs %v", s, m)
	}
}
