package radio

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/units"
)

// MultiChannel generalizes Channel to several tags sharing one reader:
//
//	H[a][k] = H_direct[a](f_k) + Σ_i s_i · A_i · H_ht,i(f_k) · H_tr,i[a](f_k)
//
// Each tag contributes its own backscatter path with independent fading,
// so two tags modulating simultaneously interfere at the reader — the
// physical basis for inventory collisions (§2's EPC Gen-2 discussion).
type MultiChannel struct {
	cfg      ChannelConfig
	offsets  []units.Hertz
	direct   []*Multipath
	ampDir   float64
	scale    float64
	antennas int
	stream   *rng.Stream
	geoBase  Geometry
	tags     []*tagPath
}

// tagPath is one tag's backscatter contribution.
type tagPath struct {
	helpTag *Multipath
	tagRead []*Multipath
	ampBack float64
}

// NewMultiChannel builds a channel with no tags; add them with AddTag. The
// geometry supplies the helper/reader placement; per-tag distances come
// from AddTag.
func NewMultiChannel(cfg ChannelConfig, geo Geometry, stream *rng.Stream) (*MultiChannel, error) {
	if cfg.Subchannels <= 0 || cfg.Antennas <= 0 {
		return nil, fmt.Errorf("radio: channel needs positive subchannels and antennas, got %d, %d",
			cfg.Subchannels, cfg.Antennas)
	}
	if geo.HelperToTag <= 0 {
		return nil, fmt.Errorf("radio: helper distance must be positive: %+v", geo)
	}
	c := &MultiChannel{
		cfg:      cfg,
		scale:    cfg.CSIScale,
		antennas: cfg.Antennas,
		stream:   stream,
		geoBase:  geo,
	}
	c.offsets = make([]units.Hertz, cfg.Subchannels)
	for k := range c.offsets {
		c.offsets[k] = units.Hertz(float64(k)-float64(cfg.Subchannels-1)/2) * cfg.SubchannelSpacing
	}
	c.direct = make([]*Multipath, cfg.Antennas)
	for a := 0; a < cfg.Antennas; a++ {
		c.direct[a] = NewMultipath(cfg.Multipath, stream.Split(fmt.Sprintf("direct-%d", a)))
	}
	c.ampDir = cfg.PathLoss.AmplitudeGain(geo.helperReader(), geo.HelperWalls)
	return c, nil
}

// AddTag adds a tag at the given distance from the reader and returns its
// index. The helper→tag distance defaults to the base geometry's.
func (c *MultiChannel) AddTag(tagToReader units.Meters) (int, error) {
	if tagToReader <= 0 {
		return 0, fmt.Errorf("radio: tag distance must be positive, got %v", tagToReader)
	}
	idx := len(c.tags)
	tp := &tagPath{
		helpTag: NewMultipath(c.cfg.Multipath, c.stream.Split(fmt.Sprintf("tag%d-helptag", idx))),
		tagRead: make([]*Multipath, c.antennas),
	}
	trCfg := c.cfg.Multipath
	trCfg.RiceK = 10
	for a := 0; a < c.antennas; a++ {
		tp.tagRead[a] = NewMultipath(trCfg, c.stream.Split(fmt.Sprintf("tag%d-tagread-%d", idx, a)))
	}
	lambda := c.cfg.Carrier.Wavelength()
	gHT := c.cfg.PathLoss.AmplitudeGain(c.geoBase.HelperToTag, c.geoBase.HelperWalls)
	gTR := FreeSpaceAmplitudeGain(tagToReader, lambda)
	tp.ampBack = gHT * gTR * c.cfg.Antenna.DifferentialGain(lambda)
	c.tags = append(c.tags, tp)
	return idx, nil
}

// Tags returns the number of tags attached.
func (c *MultiChannel) Tags() int { return len(c.tags) }

// Subchannels returns the number of sub-channels.
func (c *MultiChannel) Subchannels() int { return len(c.offsets) }

// Antennas returns the number of reader antennas.
func (c *MultiChannel) Antennas() int { return c.antennas }

// ModulationDepth returns tag i's backscatter-to-direct amplitude ratio.
func (c *MultiChannel) ModulationDepth(i int) float64 {
	if i < 0 || i >= len(c.tags) || c.ampDir == 0 {
		return 0
	}
	return c.tags[i].ampBack / c.ampDir
}

// Observe returns the composite channel at time t given each tag's switch
// state. len(reflecting) must equal Tags().
func (c *MultiChannel) Observe(t float64, reflecting []bool) ([][]complex128, error) {
	if len(reflecting) != len(c.tags) {
		return nil, fmt.Errorf("radio: got %d states for %d tags", len(reflecting), len(c.tags))
	}
	for _, tp := range c.tags {
		tp.helpTag.EvolveTo(t)
	}
	out := make([][]complex128, c.antennas)
	for a := 0; a < c.antennas; a++ {
		c.direct[a].EvolveTo(t)
		row := make([]complex128, len(c.offsets))
		for _, tp := range c.tags {
			tp.tagRead[a].EvolveTo(t)
		}
		for k, f := range c.offsets {
			h := c.direct[a].Response(f) * complex(c.ampDir, 0)
			for i, tp := range c.tags {
				if !reflecting[i] {
					continue
				}
				h += tp.helpTag.Response(f) * tp.tagRead[a].Response(f) * complex(tp.ampBack, 0)
			}
			row[k] = h * complex(c.scale, 0)
		}
		out[a] = row
	}
	return out, nil
}
