// Package tracecsv parses the CSV measurement schema cmd/wbtrace emits
// (and cmd/wbdecode consumes): one row per packet with a timestamp,
// optional tag_state ground truth, and either per-(antenna, sub-channel)
// CSI amplitudes (csi_a<A>_s<S> columns) or per-antenna RSSI (rssi_a<A>
// columns). It is the shared seam between every tool that replays traces
// — the offline decoder, the serving-layer load generator — so the column
// discovery and the truncation semantics live in exactly one place.
//
// Parser streams rows one at a time into a reused measurement, so callers
// hold one row regardless of trace length; ReadTrace materializes the
// whole trace for the paths that need it. A trace cut mid-row (a pipe
// whose producer died) surfaces as ErrTruncatedRow, distinguishable from
// genuine corruption: every complete row before the cut was already
// delivered, so callers can salvage the measurements they have.
package tracecsv

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/csi"
)

// ErrTruncatedRow reports a trace whose final row was cut mid-line — the
// signature of a pipe truncated while the producer was writing. All rows
// before the cut were parsed and delivered.
var ErrTruncatedRow = errors.New("tracecsv: trace truncated mid-row")

// chanCol maps one CSV column to a measurement lane.
type chanCol struct{ ant, sub, col int }

// Parser streams the wbtrace CSV schema one row at a time. The header is
// consumed at construction; Next fills a single reused measurement, so
// steady-state parsing does not allocate per row.
type Parser struct {
	cr       *csv.Reader
	tsCol    int
	stateCol int
	hasState bool
	csiCols  []chanCol
	rssiCols []chanCol
	m        csi.Measurement
}

// NewParser reads the header and discovers the measurement layout from
// the column names.
func NewParser(r io.Reader) (*Parser, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("tracecsv: reading header: %w", err)
	}
	col := map[string]int{}
	for i, name := range header {
		col[name] = i
	}
	tsCol, ok := col["timestamp"]
	if !ok {
		return nil, fmt.Errorf("tracecsv: trace has no timestamp column")
	}
	p := &Parser{cr: cr, tsCol: tsCol}
	p.stateCol, p.hasState = col["tag_state"]
	maxAnt, maxSub := -1, -1
	// Scan the header slice, not the column map: channel columns are
	// registered in file order, so nothing downstream inherits map
	// iteration order.
	for i, name := range header {
		var a, k int
		if n, _ := fmt.Sscanf(name, "csi_a%d_s%d", &a, &k); n == 2 {
			p.csiCols = append(p.csiCols, chanCol{a, k, i})
			if a > maxAnt {
				maxAnt = a
			}
			if k > maxSub {
				maxSub = k
			}
		} else if n, _ := fmt.Sscanf(name, "rssi_a%d", &a); n == 1 && strings.HasPrefix(name, "rssi_") {
			p.rssiCols = append(p.rssiCols, chanCol{a, 0, i})
			if a > maxAnt {
				maxAnt = a
			}
		}
	}
	if len(p.csiCols) == 0 && len(p.rssiCols) == 0 {
		return nil, fmt.Errorf("tracecsv: trace has neither csi_a*_s* nor rssi_a* columns")
	}
	// Pre-size the reused measurement to the discovered shape.
	p.m.CSI = make([][]float64, maxAnt+1)
	p.m.RSSI = make([]float64, maxAnt+1)
	for a := range p.m.CSI {
		if len(p.csiCols) > 0 {
			p.m.CSI[a] = make([]float64, maxSub+1)
		} else {
			p.m.CSI[a] = []float64{0}
		}
	}
	return p, nil
}

// HasState reports whether the trace carries a tag_state column.
func (p *Parser) HasState() bool { return p.hasState }

// Antennas returns the antenna count discovered from the header.
func (p *Parser) Antennas() int { return len(p.m.RSSI) }

// Subchannels returns the per-antenna sub-channel count (1 for an
// RSSI-only trace, where the CSI rows are single-slot placeholders).
func (p *Parser) Subchannels() int {
	if len(p.m.CSI) == 0 {
		return 0
	}
	return len(p.m.CSI[0])
}

// Next parses one row into the parser's reused measurement. The returned
// measurement and its slices are only valid until the following call —
// consumers that retain rows (ReadTrace) must clone. ok is false at EOF.
// A row cut mid-line at the end of the stream returns ErrTruncatedRow.
func (p *Parser) Next() (m csi.Measurement, state, ok bool, err error) {
	row, err := p.cr.Read()
	if err == io.EOF {
		return csi.Measurement{}, false, false, nil
	}
	if err != nil {
		return csi.Measurement{}, false, false, p.classify(err)
	}
	ts, err := strconv.ParseFloat(row[p.tsCol], 64)
	if err != nil {
		return csi.Measurement{}, false, false, p.classify(fmt.Errorf("tracecsv: bad timestamp %q: %w", row[p.tsCol], err))
	}
	p.m.Timestamp = ts
	if len(p.csiCols) > 0 {
		for _, c := range p.csiCols {
			v, err := strconv.ParseFloat(row[c.col], 64)
			if err != nil {
				return csi.Measurement{}, false, false, p.classify(fmt.Errorf("tracecsv: bad CSI value: %w", err))
			}
			p.m.CSI[c.ant][c.sub] = v
		}
	} else {
		for _, c := range p.rssiCols {
			v, err := strconv.ParseFloat(row[c.col], 64)
			if err != nil {
				return csi.Measurement{}, false, false, p.classify(fmt.Errorf("tracecsv: bad RSSI value: %w", err))
			}
			p.m.RSSI[c.ant] = v
		}
	}
	if p.hasState {
		state = row[p.stateCol] == "1"
	}
	return p.m, state, true, nil
}

// classify distinguishes a truncated trailing row from mid-trace
// corruption: if nothing follows the failing row, the cause is a cut
// pipe, and the caller may salvage everything already delivered.
func (p *Parser) classify(err error) error {
	if _, peekErr := p.cr.Read(); peekErr == io.EOF {
		return fmt.Errorf("%w: %v", ErrTruncatedRow, err)
	}
	return err
}

// Trace is a fully materialized CSV measurement trace.
type Trace struct {
	Series csi.Series
	// States is the per-packet tag state when the trace has a tag_state
	// column (ground truth from the simulator).
	States   []bool
	HasState bool
}

// ReadTrace reads the whole trace through a Parser, cloning each reused
// row into the series.
func ReadTrace(r io.Reader) (*Trace, error) {
	p, err := NewParser(r)
	if err != nil {
		return nil, err
	}
	tr := &Trace{HasState: p.hasState}
	for {
		m, state, ok, err := p.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		tr.Series.Append(CloneMeasurement(m))
		if p.hasState {
			tr.States = append(tr.States, state)
		}
	}
	return tr, nil
}

// CloneMeasurement deep-copies a measurement so retained rows own their
// slices — required for anything keeping a Parser's reused row.
func CloneMeasurement(m csi.Measurement) csi.Measurement {
	out := csi.Measurement{
		Timestamp: m.Timestamp,
		CSI:       make([][]float64, len(m.CSI)),
		RSSI:      append([]float64(nil), m.RSSI...),
	}
	for a := range m.CSI {
		out.CSI[a] = append([]float64(nil), m.CSI[a]...)
	}
	return out
}
