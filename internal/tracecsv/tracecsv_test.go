package tracecsv

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// smallCSV builds a 4-row CSI trace with a tag_state column.
func smallCSV() string {
	var sb strings.Builder
	sb.WriteString("packet,timestamp,tag_state,csi_a0_s0,csi_a0_s1,csi_a1_s0,csi_a1_s1\n")
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&sb, "%d,%0.3f,%d,%0.1f,%0.1f,%0.1f,%0.1f\n",
			i, float64(i)*0.001, i%2, 1.0+float64(i), 2.0, 3.0, 4.0)
	}
	return sb.String()
}

func TestParserStreamsRows(t *testing.T) {
	p, err := NewParser(strings.NewReader(smallCSV()))
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasState() {
		t.Error("tag_state column not discovered")
	}
	if p.Antennas() != 2 || p.Subchannels() != 2 {
		t.Errorf("shape = (%d, %d), want (2, 2)", p.Antennas(), p.Subchannels())
	}
	for i := 0; ; i++ {
		m, state, ok, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if i != 4 {
				t.Errorf("parsed %d rows, want 4", i)
			}
			break
		}
		if m.CSI[0][0] != 1.0+float64(i) {
			t.Errorf("row %d csi_a0_s0 = %v", i, m.CSI[0][0])
		}
		if state != (i%2 == 1) {
			t.Errorf("row %d state = %v", i, state)
		}
	}
}

func TestReadTraceMaterializes(t *testing.T) {
	tr, err := ReadTrace(strings.NewReader(smallCSV()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Series.Len() != 4 || !tr.HasState || len(tr.States) != 4 {
		t.Fatalf("trace = %d rows, states %d", tr.Series.Len(), len(tr.States))
	}
	// Rows must be clones, not views of the parser's reused row.
	if &tr.Series.Measurements[0].CSI[0][0] == &tr.Series.Measurements[1].CSI[0][0] {
		t.Error("rows share backing storage")
	}
}

// TestTruncatedFinalRow pins the pipe-cut contract: a final row cut
// mid-line is ErrTruncatedRow (salvageable), while the same damage
// mid-trace is a plain parse error.
func TestTruncatedFinalRow(t *testing.T) {
	full := smallCSV()
	lines := strings.Split(strings.TrimSuffix(full, "\n"), "\n")

	// Cut the last row mid-field.
	cut := strings.Join(lines[:len(lines)-1], "\n") + "\n" + lines[len(lines)-1][:8]
	p, err := NewParser(strings.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for {
		_, _, ok, err := p.Next()
		if err != nil {
			if !errors.Is(err, ErrTruncatedRow) {
				t.Fatalf("final-row cut: got %v, want ErrTruncatedRow", err)
			}
			break
		}
		if !ok {
			t.Fatal("truncated trace ended without an error")
		}
		rows++
	}
	if rows != 3 {
		t.Errorf("salvaged %d complete rows before the cut, want 3", rows)
	}

	// The same short row mid-trace is corruption, not truncation.
	bad := lines[0] + "\n" + lines[1][:8] + "\n" + lines[2] + "\n"
	p, err = NewParser(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, _, ok, err := p.Next()
		if err != nil {
			if errors.Is(err, ErrTruncatedRow) {
				t.Error("mid-trace corruption misclassified as truncation")
			}
			break
		}
		if !ok {
			t.Fatal("corrupt trace parsed cleanly")
		}
	}

	// ReadTrace propagates the classification.
	if _, err := ReadTrace(strings.NewReader(cut)); !errors.Is(err, ErrTruncatedRow) {
		t.Errorf("ReadTrace on a cut trace: %v", err)
	}
}

func TestParserHeaderErrors(t *testing.T) {
	if _, err := NewParser(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("headerless trace should fail")
	}
	if _, err := NewParser(strings.NewReader("timestamp,other\n")); err == nil {
		t.Error("trace without measurement columns should fail")
	}
	if _, err := NewParser(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
}
