// Package units provides the physical unit types and conversions used
// throughout the Wi-Fi Backscatter simulator: power in dBm and milliwatts,
// gains in dB, frequencies, wavelengths, and distances.
//
// Power quantities are kept in explicit types so that linear and logarithmic
// values cannot be mixed up silently. All conversions are pure functions.
package units

import (
	"fmt"
	"math"
)

// SpeedOfLight is the propagation speed of RF signals in m/s.
const SpeedOfLight = 299_792_458.0

// DBm is a power level in decibel-milliwatts.
type DBm float64

// Milliwatt is a linear power in mW.
type Milliwatt float64

// DB is a dimensionless gain or loss in decibels.
type DB float64

// Hertz is a frequency in Hz.
type Hertz float64

// Common frequency multiples.
const (
	KHz Hertz = 1e3
	MHz Hertz = 1e6
	GHz Hertz = 1e9
)

// Meters is a distance in meters.
type Meters float64

// Centimeters converts a distance expressed in centimeters to Meters.
func Centimeters(cm float64) Meters { return Meters(cm / 100) }

// Cm reports the distance in centimeters.
func (m Meters) Cm() float64 { return float64(m) * 100 }

// Milliwatts converts a dBm power level to linear milliwatts.
func (p DBm) Milliwatts() Milliwatt {
	return Milliwatt(math.Pow(10, float64(p)/10))
}

// DBm converts a linear milliwatt power to dBm. Non-positive powers map to
// -inf dBm.
func (p Milliwatt) DBm() DBm {
	if p <= 0 {
		return DBm(math.Inf(-1))
	}
	return DBm(10 * math.Log10(float64(p)))
}

// Add applies a gain (or loss, if negative) in dB to a power level.
func (p DBm) Add(g DB) DBm { return p + DBm(g) }

// Sub returns the difference between two power levels as a gain in dB.
func (p DBm) Sub(q DBm) DB { return DB(p - q) }

// Linear converts a dB gain to a linear power ratio.
func (g DB) Linear() float64 { return math.Pow(10, float64(g)/10) }

// AmplitudeRatio converts a dB gain to a linear amplitude (voltage) ratio.
func (g DB) AmplitudeRatio() float64 { return math.Pow(10, float64(g)/20) }

// RatioDB converts a linear power ratio to dB. Non-positive ratios map to
// -inf dB.
func RatioDB(r float64) DB {
	if r <= 0 {
		return DB(math.Inf(-1))
	}
	return DB(10 * math.Log10(r))
}

// Wavelength returns the free-space wavelength of a carrier frequency.
func (f Hertz) Wavelength() Meters {
	return Meters(SpeedOfLight / float64(f))
}

// String implements fmt.Stringer.
func (p DBm) String() string { return fmt.Sprintf("%.2f dBm", float64(p)) }

// String implements fmt.Stringer.
func (g DB) String() string { return fmt.Sprintf("%.2f dB", float64(g)) }

// String implements fmt.Stringer.
func (f Hertz) String() string {
	switch {
	case f >= GHz:
		return fmt.Sprintf("%.3f GHz", float64(f)/1e9)
	case f >= MHz:
		return fmt.Sprintf("%.3f MHz", float64(f)/1e6)
	case f >= KHz:
		return fmt.Sprintf("%.3f kHz", float64(f)/1e3)
	}
	return fmt.Sprintf("%.0f Hz", float64(f))
}

// String implements fmt.Stringer.
func (m Meters) String() string {
	if m < 1 {
		return fmt.Sprintf("%.1f cm", m.Cm())
	}
	return fmt.Sprintf("%.2f m", float64(m))
}

// Microwatt is a linear power in µW, used for the tag's power budget.
type Microwatt float64

// Milliwatts converts µW to mW.
func (p Microwatt) Milliwatts() Milliwatt { return Milliwatt(p / 1000) }

// Microwatts converts mW to µW.
func (p Milliwatt) Microwatts() Microwatt { return Microwatt(p * 1000) }
