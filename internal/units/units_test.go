package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDBmMilliwattRoundTrip(t *testing.T) {
	cases := []struct {
		dbm DBm
		mw  Milliwatt
	}{
		{0, 1},
		{10, 10},
		{20, 100},
		{-30, 0.001},
		{16, 39.810717},
	}
	for _, c := range cases {
		if got := c.dbm.Milliwatts(); math.Abs(float64(got-c.mw)) > 1e-6*math.Abs(float64(c.mw)) {
			t.Errorf("%v.Milliwatts() = %v, want %v", c.dbm, got, c.mw)
		}
		if got := c.mw.DBm(); math.Abs(float64(got-c.dbm)) > 1e-6 {
			t.Errorf("%v.DBm() = %v, want %v", c.mw, got, c.dbm)
		}
	}
}

func TestDBmRoundTripProperty(t *testing.T) {
	f := func(p float64) bool {
		// Constrain to a sane power range to avoid overflow.
		p = math.Mod(p, 200)
		dbm := DBm(p)
		back := dbm.Milliwatts().DBm()
		return math.Abs(float64(back-dbm)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNonPositivePower(t *testing.T) {
	if got := Milliwatt(0).DBm(); !math.IsInf(float64(got), -1) {
		t.Errorf("0 mW should be -inf dBm, got %v", got)
	}
	if got := Milliwatt(-5).DBm(); !math.IsInf(float64(got), -1) {
		t.Errorf("-5 mW should be -inf dBm, got %v", got)
	}
	if got := RatioDB(0); !math.IsInf(float64(got), -1) {
		t.Errorf("RatioDB(0) should be -inf, got %v", got)
	}
}

func TestGainArithmetic(t *testing.T) {
	p := DBm(16)
	if got := p.Add(-46.8); math.Abs(float64(got-(-30.8))) > 1e-9 {
		t.Errorf("16 dBm - 46.8 dB = %v, want -30.8 dBm", got)
	}
	if got := DBm(10).Sub(DBm(4)); got != 6 {
		t.Errorf("10 dBm - 4 dBm = %v dB, want 6", got)
	}
}

func TestDBLinear(t *testing.T) {
	if got := DB(3).Linear(); math.Abs(got-1.9952623) > 1e-6 {
		t.Errorf("3 dB linear = %v", got)
	}
	if got := DB(20).AmplitudeRatio(); math.Abs(got-10) > 1e-9 {
		t.Errorf("20 dB amplitude ratio = %v, want 10", got)
	}
	if got := RatioDB(100); math.Abs(float64(got-20)) > 1e-9 {
		t.Errorf("RatioDB(100) = %v, want 20", got)
	}
}

func TestWavelength(t *testing.T) {
	// 2.437 GHz (Wi-Fi channel 6) has a wavelength of about 12.3 cm.
	got := (2.437 * GHz).Wavelength()
	if math.Abs(float64(got)-0.12302) > 1e-4 {
		t.Errorf("wavelength(2.437 GHz) = %v, want ~0.123 m", got)
	}
}

func TestDistanceConversions(t *testing.T) {
	if got := Centimeters(65); math.Abs(float64(got)-0.65) > 1e-12 {
		t.Errorf("Centimeters(65) = %v", got)
	}
	if got := Meters(2.13).Cm(); math.Abs(got-213) > 1e-9 {
		t.Errorf("2.13 m in cm = %v", got)
	}
}

func TestMicrowatt(t *testing.T) {
	if got := Microwatt(9).Milliwatts(); math.Abs(float64(got)-0.009) > 1e-12 {
		t.Errorf("9 µW = %v mW", got)
	}
	if got := Milliwatt(1).Microwatts(); got != 1000 {
		t.Errorf("1 mW = %v µW", got)
	}
}

func TestStringers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{DBm(16).String(), "16.00 dBm"},
		{DB(-46.8).String(), "-46.80 dB"},
		{(2.437 * GHz).String(), "2.437 GHz"},
		{(20 * MHz).String(), "20.000 MHz"},
		{(312.5 * KHz).String(), "312.500 kHz"},
		{Hertz(100).String(), "100 Hz"},
		{Meters(0.65).String(), "65.0 cm"},
		{Meters(2.13).String(), "2.13 m"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}
