package main

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// buildCSV synthesizes the same small decodable trace the wbdecode tests
// use: 2 antennas × 4 sub-channels at 1000 pkt/s, a framed transmission
// of 20 alternating payload bits at 100 bps starting at t=1.0, with the
// modulation carried on channel (0,1).
func buildCSV(t *testing.T) string {
	t.Helper()
	barker := []bool{true, true, true, true, true, false, false, true, true, false, true, false, true}
	payload := make([]bool, 20)
	for i := range payload {
		payload[i] = i%2 == 0
	}
	frame := append([]bool{}, barker...)
	frame = append(frame, payload...)
	for _, b := range barker {
		frame = append(frame, !b)
	}
	var sb strings.Builder
	sb.WriteString("packet,timestamp")
	for a := 0; a < 2; a++ {
		for k := 0; k < 4; k++ {
			fmt.Fprintf(&sb, ",csi_a%d_s%d", a, k)
		}
	}
	sb.WriteString("\n")
	const bitDur = 0.01
	for i := 0; i < 2000; i++ {
		ts := float64(i) * 0.001
		bit := 0.0
		j := int((ts - 1.0) / bitDur)
		if j >= 0 && j < len(frame) && frame[j] {
			bit = 1
		}
		dither := 0.02 * math.Sin(float64(i)*0.7)
		fmt.Fprintf(&sb, "%d,%.6f", i, ts)
		for a := 0; a < 2; a++ {
			for k := 0; k < 4; k++ {
				amp := 10.0 + dither
				if a == 0 && k == 1 {
					amp += 2 * bit
				}
				fmt.Fprintf(&sb, ",%.4f", amp)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestRunSelfHostedEquivalence is the replay loop against an in-process
// server: every session must come back byte-identical to batch.
func TestRunSelfHostedEquivalence(t *testing.T) {
	csv := buildCSV(t)
	var out strings.Builder
	if err := run(strings.NewReader(csv), &out, "", 8, 100, 1.0, 20, "csi"); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "8/8 sessions byte-identical") {
		t.Errorf("output missing the equivalence summary:\n%s", out.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run(strings.NewReader(""), &strings.Builder{}, "", 4, 100, 1.0, 0, "csi"); err == nil {
		t.Error("missing -payload accepted")
	}
	if err := run(strings.NewReader(""), &strings.Builder{}, "", 0, 100, 1.0, 20, "csi"); err == nil {
		t.Error("non-positive -n accepted")
	}
	if err := run(strings.NewReader(""), &strings.Builder{}, "", 4, 100, 1.0, 20, "fsk"); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run(strings.NewReader("a,b\n"), &strings.Builder{}, "", 4, 100, 1.0, 20, "csi"); err == nil {
		t.Error("headerless trace accepted")
	}
}
