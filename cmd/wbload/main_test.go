package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildCSV synthesizes the same small decodable trace the wbdecode tests
// use: 2 antennas × 4 sub-channels at 1000 pkt/s, a framed transmission
// of 20 alternating payload bits at 100 bps starting at t=1.0, with the
// modulation carried on channel (0,1).
func buildCSV(t *testing.T) string {
	t.Helper()
	barker := []bool{true, true, true, true, true, false, false, true, true, false, true, false, true}
	payload := make([]bool, 20)
	for i := range payload {
		payload[i] = i%2 == 0
	}
	frame := append([]bool{}, barker...)
	frame = append(frame, payload...)
	for _, b := range barker {
		frame = append(frame, !b)
	}
	var sb strings.Builder
	sb.WriteString("packet,timestamp")
	for a := 0; a < 2; a++ {
		for k := 0; k < 4; k++ {
			fmt.Fprintf(&sb, ",csi_a%d_s%d", a, k)
		}
	}
	sb.WriteString("\n")
	const bitDur = 0.01
	for i := 0; i < 2000; i++ {
		ts := float64(i) * 0.001
		bit := 0.0
		j := int((ts - 1.0) / bitDur)
		if j >= 0 && j < len(frame) && frame[j] {
			bit = 1
		}
		dither := 0.02 * math.Sin(float64(i)*0.7)
		fmt.Fprintf(&sb, "%d,%.6f", i, ts)
		for a := 0; a < 2; a++ {
			for k := 0; k < 4; k++ {
				amp := 10.0 + dither
				if a == 0 && k == 1 {
					amp += 2 * bit
				}
				fmt.Fprintf(&sb, ",%.4f", amp)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// baseConfig is the self-hosted run every test starts from.
func baseConfig() loadConfig {
	return loadConfig{sessions: 8, rate: 100, start: 1.0, payload: 20, mode: "csi"}
}

// TestRunSelfHostedEquivalence is the replay loop against an in-process
// server: every session must come back byte-identical to batch.
func TestRunSelfHostedEquivalence(t *testing.T) {
	csv := buildCSV(t)
	var out strings.Builder
	if err := run(strings.NewReader(csv), &out, baseConfig()); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "8/8 sessions byte-identical") {
		t.Errorf("output missing the equivalence summary:\n%s", out.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	mod := func(f func(*loadConfig)) loadConfig {
		cfg := baseConfig()
		f(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  loadConfig
		in   string
	}{
		{"missing payload", mod(func(c *loadConfig) { c.payload = 0 }), ""},
		{"non-positive n", mod(func(c *loadConfig) { c.sessions = 0 }), ""},
		{"unknown mode", mod(func(c *loadConfig) { c.mode = "fsk" }), ""},
		{"headerless trace", baseConfig(), "a,b\n"},
		{"bad chaos spec", mod(func(c *loadConfig) { c.chaos = "no-such-profile" }), ""},
	}
	for _, tc := range cases {
		if err := run(strings.NewReader(tc.in), &strings.Builder{}, tc.cfg); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// TestChaosResumeEquivalence is the tentpole acceptance check: under the
// wire-flaky profile — which cuts every lane's first connection in both
// directions — every resumed stream must still decode byte-identical to
// batch, at one worker and at eight. runLoad's per-lane stats prove the
// faults actually fired: every lane was cut and resumed at least once.
func TestChaosResumeEquivalence(t *testing.T) {
	csv := buildCSV(t)
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := baseConfig()
			cfg.workers = workers
			cfg.chaos = "wire-flaky"
			cfg.seed = 7
			var out strings.Builder
			stats, err := runLoad(strings.NewReader(csv), &out, cfg)
			if err != nil {
				t.Fatalf("chaos run: %v\noutput:\n%s", err, out.String())
			}
			if !strings.Contains(out.String(), "8/8 sessions byte-identical") {
				t.Fatalf("output missing the equivalence summary:\n%s", out.String())
			}
			for lane, st := range stats {
				if st.Cuts == 0 {
					t.Errorf("lane %d was never cut; wire-flaky must cut every connection", lane)
				}
				if st.Resumes == 0 {
					t.Errorf("lane %d never resumed; its stream should have been cut mid-flight", lane)
				}
				if st.Attempts < 2 {
					t.Errorf("lane %d finished in %d attempt(s); expected reconnects", lane, st.Attempts)
				}
			}
		})
	}
}

// TestChaosMetricsDeterministic pins the reproducibility contract: the
// same (seed, spec, trace) produce a byte-identical -metrics snapshot
// regardless of worker count — every counter in it is a per-lane
// function of the fault plan, not of scheduling.
func TestChaosMetricsDeterministic(t *testing.T) {
	csv := buildCSV(t)
	dir := t.TempDir()
	snapshots := make([][]byte, 0, 3)
	for i, workers := range []int{1, 8, 8} {
		cfg := baseConfig()
		cfg.workers = workers
		cfg.chaos = "wire-flaky"
		cfg.seed = 42
		cfg.metrics = filepath.Join(dir, fmt.Sprintf("metrics-%d.json", i))
		var out strings.Builder
		if err := run(strings.NewReader(csv), &out, cfg); err != nil {
			t.Fatalf("chaos run %d: %v\noutput:\n%s", i, err, out.String())
		}
		blob, err := os.ReadFile(cfg.metrics)
		if err != nil {
			t.Fatal(err)
		}
		snapshots = append(snapshots, blob)
	}
	if string(snapshots[0]) != string(snapshots[1]) {
		t.Errorf("metrics differ between workers=1 and workers=8:\n%s\n---\n%s",
			snapshots[0], snapshots[1])
	}
	if string(snapshots[1]) != string(snapshots[2]) {
		t.Errorf("metrics differ between two identical workers=8 runs:\n%s\n---\n%s",
			snapshots[1], snapshots[2])
	}
	for _, want := range []string{"wbload.resumes", "chaos.cuts.executed", "chaos.splits.executed"} {
		if !strings.Contains(string(snapshots[0]), want) {
			t.Errorf("metrics snapshot missing %s:\n%s", want, snapshots[0])
		}
	}
}

// TestChaosInlineSchedule drives an inline schedule through the flag
// grammar end to end: a single certain early cut still yields a
// byte-identical decode.
func TestChaosInlineSchedule(t *testing.T) {
	csv := buildCSV(t)
	cfg := baseConfig()
	cfg.sessions = 2
	cfg.chaos = "burst@0:1x1;csidrop@0:20x0.5"
	cfg.seed = 3
	var out strings.Builder
	stats, err := runLoad(strings.NewReader(csv), &out, cfg)
	if err != nil {
		t.Fatalf("inline chaos run: %v\noutput:\n%s", err, out.String())
	}
	for lane, st := range stats {
		if st.Cuts == 0 {
			t.Errorf("lane %d survived a certain cut window uncut", lane)
		}
	}
}
