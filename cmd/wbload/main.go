// Command wbload is the load-generating client for wbserved: it replays
// one wbtrace capture over many concurrent line-protocol sessions and
// verifies that every served decode is byte-identical to the local batch
// decoder's answer on the same trace — the serving layer must never
// change a bit, no matter how many neighbors it is multiplexing.
//
// Usage:
//
//	wbtrace -what csi > trace.csv
//	wbserved -addr 127.0.0.1:4711 &
//	wbload -addr 127.0.0.1:4711 -n 64 -rate 100 -start 1.0 -payload 300 trace.csv
//
// With -addr "" wbload self-hosts an in-process server on a loopback
// listener, which makes the equivalence check a one-command experiment
// (see EXPERIMENTS.md).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/csi"
	"repro/internal/serve"
	"repro/internal/tracecsv"
	"repro/internal/uplink"
)

func main() {
	addr := flag.String("addr", "", "wbserved address (empty = self-hosted in-process server)")
	n := flag.Int("n", 64, "concurrent sessions")
	rate := flag.Float64("rate", 100, "tag bit rate in bits/s")
	start := flag.Float64("start", 1.0, "transmission start time in seconds")
	payload := flag.Int("payload", 0, "payload bits (required)")
	mode := flag.String("mode", "csi", "csi or rssi")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "wbload:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := run(in, os.Stdout, *addr, *n, *rate, *start, *payload, *mode); err != nil {
		fmt.Fprintln(os.Stderr, "wbload:", err)
		os.Exit(1)
	}
}

// run replays the trace from in over n concurrent sessions and fails
// unless every session's decode matches the local batch decode.
func run(in io.Reader, w io.Writer, addr string, n int, rate, start float64, payloadLen int, mode string) error {
	if payloadLen <= 0 {
		return fmt.Errorf("-payload is required (the expected payload length in bits)")
	}
	if n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", n)
	}
	var smode uplink.StreamMode
	switch mode {
	case "csi":
		smode = uplink.StreamCSI
	case "rssi":
		smode = uplink.StreamRSSI
	default:
		return fmt.Errorf("unknown mode %q (want csi or rssi)", mode)
	}
	tr, err := tracecsv.ReadTrace(in)
	if err != nil {
		return fmt.Errorf("reading trace: %w", err)
	}
	series := &tr.Series
	if series.Len() == 0 {
		return fmt.Errorf("trace has no measurements")
	}

	// The reference: what the batch decoder says about this capture.
	dec, err := uplink.NewDecoder(uplink.DefaultConfig(1 / rate))
	if err != nil {
		return err
	}
	var want *uplink.Result
	if smode == uplink.StreamRSSI {
		want, err = dec.DecodeRSSI(series, start, payloadLen)
	} else {
		want, err = dec.DecodeCSI(series, start, payloadLen)
	}
	if err != nil {
		return fmt.Errorf("batch decode: %w", err)
	}
	wantBits := payloadString(want)

	params := serve.SessionParams{
		Mode:        smode,
		BitRate:     rate,
		Start:       start,
		PayloadLen:  payloadLen,
		Antennas:    series.Antennas(),
		Subchannels: series.Subchannels(),
	}

	// Self-host when no daemon was named.
	var selfDrain func() error
	if addr == "" {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := serve.NewServer(serve.Config{MaxSessions: n, Now: time.Now})
		go func() { _ = srv.ServeTCP(l) }()
		addr = l.Addr().String()
		selfDrain = func() error {
			_ = l.Close()
			return srv.Drain()
		}
		fmt.Fprintf(w, "wbload: self-hosted server on %s\n", addr)
	}

	results := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = replay(addr, params, series, wantBits)
		}(i)
	}
	wg.Wait()
	if selfDrain != nil {
		if err := selfDrain(); err != nil {
			return err
		}
	}

	failed := 0
	for i, err := range results {
		if err != nil {
			failed++
			if failed <= 5 {
				fmt.Fprintf(w, "wbload: session %d: %v\n", i, err)
			}
		}
	}
	fmt.Fprintf(w, "wbload: %d/%d sessions byte-identical to batch (%d payload bits, %d measurements each)\n",
		n-failed, n, payloadLen, series.Len())
	if failed > 0 {
		return fmt.Errorf("%d of %d sessions diverged from the batch decode", failed, n)
	}
	return nil
}

// replay runs one full protocol exchange and checks the decode against
// the batch reference.
func replay(addr string, p serve.SessionParams, series *csi.Series, wantBits string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	buf := serve.AppendHello(nil, p)
	buf = append(buf, '\n')
	if _, err := conn.Write(buf); err != nil {
		return err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !sc.Scan() {
		return fmt.Errorf("no response to hello: %v", sc.Err())
	}
	r, err := serve.ParseResponse(sc.Bytes())
	if err != nil {
		return err
	}
	if r.Kind != serve.RespOK {
		return fmt.Errorf("rejected: %s", r.Reason)
	}
	for i := range series.Measurements {
		buf = serve.AppendMeasurement(buf[:0], series.Measurements[i])
		buf = append(buf, '\n')
		if _, err := conn.Write(buf); err != nil {
			return fmt.Errorf("measurement write: %w", err)
		}
	}
	if _, err := conn.Write([]byte("flush\n")); err != nil {
		return fmt.Errorf("flush write: %w", err)
	}
	var streamed strings.Builder
	nbits := 0
	for sc.Scan() {
		r, err := serve.ParseResponse(sc.Bytes())
		if err != nil {
			return err
		}
		switch r.Kind {
		case serve.RespBit:
			nbits++
			if r.Bit.Bit {
				streamed.WriteByte('1')
			} else {
				streamed.WriteByte('0')
			}
		case serve.RespError:
			return fmt.Errorf("server error: %s", r.Reason)
		case serve.RespDone:
			if r.Bits != wantBits {
				return fmt.Errorf("done bits %s, batch decoded %s", r.Bits, wantBits)
			}
			if nbits != len(wantBits) || streamed.String() != wantBits {
				return fmt.Errorf("streamed bits %s (%d lines), batch decoded %s",
					streamed.String(), nbits, wantBits)
			}
			return nil
		default:
			return fmt.Errorf("unexpected mid-session response kind %d", r.Kind)
		}
	}
	return fmt.Errorf("connection ended without a final line: %v", sc.Err())
}

// payloadString renders the batch payload the way the done line does.
func payloadString(res *uplink.Result) string {
	var sb strings.Builder
	for _, b := range res.Payload {
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
