// Command wbload is the load-generating client for wbserved: it replays
// one wbtrace capture over many concurrent line-protocol sessions and
// verifies that every served decode is byte-identical to the local batch
// decoder's answer on the same trace — the serving layer must never
// change a bit, no matter how many neighbors it is multiplexing.
//
// Usage:
//
//	wbtrace -what csi > trace.csv
//	wbserved -addr 127.0.0.1:4711 &
//	wbload -addr 127.0.0.1:4711 -n 64 -rate 100 -start 1.0 -payload 300 trace.csv
//
// With -addr "" wbload self-hosts an in-process server on a loopback
// listener, which makes the equivalence check a one-command experiment
// (see EXPERIMENTS.md).
//
// With -chaos every stream is opened resumable and routed through the
// wire-level fault proxy (internal/serve/chaosproxy): the named profile
// or inline schedule is compiled per stream into connection cuts,
// partial writes, and stalls, and the equivalence check must STILL hold
// — every resumed stream's bits byte-identical to batch. Same -seed and
// -chaos spec replay the identical fault plan, so a -metrics snapshot
// of a chaos run is byte-reproducible regardless of -workers:
//
//	wbload -n 8 -workers 8 -chaos wire-flaky -seed 7 -payload 20 \
//	       -metrics chaos.json trace.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/chaosproxy"
	"repro/internal/tracecsv"
	"repro/internal/uplink"
)

// loadConfig carries every knob of one wbload run; flags parse into it
// and tests construct it directly.
type loadConfig struct {
	addr     string  // wbserved address; empty self-hosts
	sessions int     // -n: concurrent streams (chaos lanes)
	workers  int     // -workers: replay pool size; 0 means sessions
	rate     float64 // -rate: tag bit rate, bits/s
	start    float64 // -start: transmission start, seconds
	payload  int     // -payload: payload bits (required)
	mode     string  // -mode: csi or rssi
	chaos    string  // -chaos: fault profile name or inline schedule
	seed     int64   // -seed: chaos plan seed
	chaosBPS float64 // -chaos-bps: seconds→bytes mapping for the proxy
	metrics  string  // -metrics: JSON snapshot path (deterministic set)
}

func main() {
	var cfg loadConfig
	flag.StringVar(&cfg.addr, "addr", "", "wbserved address (empty = self-hosted in-process server)")
	flag.IntVar(&cfg.sessions, "n", 64, "concurrent sessions (chaos lanes)")
	flag.IntVar(&cfg.workers, "workers", 0, "replay worker pool size (0 = one per session)")
	flag.Float64Var(&cfg.rate, "rate", 100, "tag bit rate in bits/s")
	flag.Float64Var(&cfg.start, "start", 1.0, "transmission start time in seconds")
	flag.IntVar(&cfg.payload, "payload", 0, "payload bits (required)")
	flag.StringVar(&cfg.mode, "mode", "csi", "csi or rssi")
	flag.StringVar(&cfg.chaos, "chaos", "", "wire fault spec: profile name (wire-flaky) or inline schedule")
	flag.Int64Var(&cfg.seed, "seed", 1, "chaos plan seed")
	flag.Float64Var(&cfg.chaosBPS, "chaos-bps", 0, "chaos proxy bytes per schedule second (0 = default)")
	flag.StringVar(&cfg.metrics, "metrics", "", "write a deterministic metrics JSON snapshot to this file")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "wbload:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := run(in, os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "wbload:", err)
		os.Exit(1)
	}
}

// run replays the trace from in over cfg.sessions streams and fails
// unless every stream's decode matches the local batch decode — with or
// without the chaos proxy in the path.
func run(in io.Reader, w io.Writer, cfg loadConfig) error {
	_, err := runLoad(in, w, cfg)
	return err
}

// runLoad is run's core, returning the per-lane replay stats so tests
// can assert per-stream properties (every lane cut at least once under
// wire-flaky, resume counts, ...).
func runLoad(in io.Reader, w io.Writer, cfg loadConfig) ([]serve.ReplayStats, error) {
	if cfg.payload <= 0 {
		return nil, fmt.Errorf("-payload is required (the expected payload length in bits)")
	}
	if cfg.sessions <= 0 {
		return nil, fmt.Errorf("-n must be positive, got %d", cfg.sessions)
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = cfg.sessions
	}
	var smode uplink.StreamMode
	switch cfg.mode {
	case "csi":
		smode = uplink.StreamCSI
	case "rssi":
		smode = uplink.StreamRSSI
	default:
		return nil, fmt.Errorf("unknown mode %q (want csi or rssi)", cfg.mode)
	}
	sched, err := faults.ParseSpec(cfg.chaos)
	if err != nil {
		return nil, err
	}
	tr, err := tracecsv.ReadTrace(in)
	if err != nil {
		return nil, fmt.Errorf("reading trace: %w", err)
	}
	series := &tr.Series
	if series.Len() == 0 {
		return nil, fmt.Errorf("trace has no measurements")
	}

	// The reference: what the batch decoder says about this capture.
	dec, err := uplink.NewDecoder(uplink.DefaultConfig(1 / cfg.rate))
	if err != nil {
		return nil, err
	}
	var want *uplink.Result
	if smode == uplink.StreamRSSI {
		want, err = dec.DecodeRSSI(series, cfg.start, cfg.payload)
	} else {
		want, err = dec.DecodeCSI(series, cfg.start, cfg.payload)
	}
	if err != nil {
		return nil, fmt.Errorf("batch decode: %w", err)
	}
	wantBits := payloadString(want)

	params := serve.SessionParams{
		Mode:        smode,
		BitRate:     cfg.rate,
		Start:       cfg.start,
		PayloadLen:  cfg.payload,
		Antennas:    series.Antennas(),
		Subchannels: series.Subchannels(),
		Resumable:   !sched.Empty(),
	}

	// Self-host when no daemon was named. Chaos runs get generous
	// admission and parking headroom: a capacity eviction mid-run would
	// turn a deterministic fault plan into a lost checkpoint.
	addr := cfg.addr
	var selfDrain func() error
	if addr == "" {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := serve.NewServer(serve.Config{
			MaxSessions: 2*cfg.sessions + 16,
			MaxParked:   2*cfg.sessions + 16,
			TokenSeed:   uint64(cfg.seed),
			Now:         time.Now,
		})
		go func() { _ = srv.ServeTCP(l) }()
		addr = l.Addr().String()
		selfDrain = func() error {
			_ = l.Close()
			return srv.Drain()
		}
		fmt.Fprintf(w, "wbload: self-hosted server on %s\n", addr)
	}

	// The chaos proxy sits between every stream and the server; each
	// stream is a lane, so its fault plan survives reconnects.
	var proxy *chaosproxy.Proxy
	if !sched.Empty() {
		proxy, err = chaosproxy.New(addr, chaosproxy.Config{
			Schedule:       sched,
			Seed:           cfg.seed,
			BytesPerSecond: cfg.chaosBPS,
		})
		if err != nil {
			return nil, err
		}
	}

	results := make([]error, cfg.sessions)
	stats := make([]serve.ReplayStats, cfg.sessions)
	lanes := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lane := range lanes {
				dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
				if proxy != nil {
					id := lane
					dial = func() (net.Conn, error) { return proxy.Dial(id) }
				}
				st, err := serve.Replay(dial, serve.ReplayOptions{
					Params:       params,
					Measurements: series.Measurements,
				})
				stats[lane] = st
				if err == nil {
					err = checkEquivalence(st, wantBits)
				}
				results[lane] = err
			}
		}()
	}
	for lane := 0; lane < cfg.sessions; lane++ {
		lanes <- lane
	}
	close(lanes)
	wg.Wait()
	if selfDrain != nil {
		if err := selfDrain(); err != nil {
			return nil, err
		}
	}

	failed := 0
	var attempts, resumes, cuts, bits int
	for i, err := range results {
		attempts += stats[i].Attempts
		resumes += stats[i].Resumes
		cuts += stats[i].Cuts
		bits += len(stats[i].Bits)
		if err != nil {
			failed++
			if failed <= 5 {
				fmt.Fprintf(w, "wbload: session %d: %v\n", i, err)
			}
		}
	}
	if proxy != nil {
		fmt.Fprintf(w, "wbload: chaos %q seed %d: %d attempts, %d resumes, %d cuts across %d lanes\n",
			cfg.chaos, cfg.seed, attempts, resumes, cuts, cfg.sessions)
	}
	fmt.Fprintf(w, "wbload: %d/%d sessions byte-identical to batch (%d payload bits, %d measurements each)\n",
		cfg.sessions-failed, cfg.sessions, cfg.payload, series.Len())
	if cfg.metrics != "" {
		if err := writeMetrics(cfg.metrics, cfg.sessions, failed, attempts, resumes, cuts, bits, proxy); err != nil {
			return nil, err
		}
	}
	if failed > 0 {
		return nil, fmt.Errorf("%d of %d sessions diverged from the batch decode", failed, cfg.sessions)
	}
	return stats, nil
}

// checkEquivalence verifies one stream's outcome against the batch
// reference: the done line's payload and the streamed bit lines must
// both be byte-identical.
func checkEquivalence(st serve.ReplayStats, wantBits string) error {
	if st.Done.Kind != serve.RespDone {
		return fmt.Errorf("stream ended without a done line (kind %d)", st.Done.Kind)
	}
	if st.Done.Bits != wantBits {
		return fmt.Errorf("done bits %s, batch decoded %s", st.Done.Bits, wantBits)
	}
	streamed := bitString(st.Bits)
	if streamed != wantBits {
		return fmt.Errorf("streamed bits %s (%d lines), batch decoded %s",
			streamed, len(st.Bits), wantBits)
	}
	return nil
}

// writeMetrics snapshots the run's deterministic counters: replay
// attempts/resumes/cuts and the proxy's planned/executed fault events
// are all per-lane functions of (seed, spec, trace), so the JSON is
// byte-identical across runs and worker counts. Time-driven server
// counters (watchdog scans, drain seconds) are deliberately excluded.
func writeMetrics(path string, lanes, failed, attempts, resumes, cuts, bits int, proxy *chaosproxy.Proxy) error {
	reg := obs.NewRegistry()
	reg.Counter("wbload.lanes").Add(int64(lanes))
	reg.Counter("wbload.failed").Add(int64(failed))
	reg.Counter("wbload.attempts").Add(int64(attempts))
	reg.Counter("wbload.resumes").Add(int64(resumes))
	reg.Counter("wbload.cuts").Add(int64(cuts))
	reg.Counter("wbload.bits").Add(int64(bits))
	if proxy != nil {
		st := proxy.Stats()
		reg.Counter("chaos.lanes").Add(st.Lanes)
		reg.Counter("chaos.conns").Add(st.Conns)
		reg.Counter("chaos.cuts.planned").Add(st.CutsPlanned)
		reg.Counter("chaos.cuts.executed").Add(st.CutsExecuted)
		reg.Counter("chaos.corrupt.planned").Add(st.CorruptPlanned)
		reg.Counter("chaos.corrupt.executed").Add(st.CorruptDone)
		reg.Counter("chaos.stalls.planned").Add(st.StallsPlanned)
		reg.Counter("chaos.stalls.executed").Add(st.StallsExecuted)
		reg.Counter("chaos.splits.planned").Add(st.SplitsPlanned)
		reg.Counter("chaos.splits.executed").Add(st.SplitsExecuted)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// bitString renders streamed bit decisions the way the done line does.
func bitString(bits []uplink.BitDecision) string {
	var sb strings.Builder
	for _, b := range bits {
		if b.Bit {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// payloadString renders the batch payload the way the done line does.
func payloadString(res *uplink.Result) string {
	var sb strings.Builder
	for _, b := range res.Payload {
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
