// Command wbserved is the decode-serving daemon: it listens for
// line-protocol connections (see internal/serve's wire format), runs one
// streaming decoder per session under bounded admission and per-session
// backpressure, and emits decoded bits back to each client the moment
// its frame closes. SIGINT/SIGTERM trigger the graceful drain: the
// listener closes, in-frame sessions flush their partial frames exactly
// like a truncated batch trace would, and stragglers are force-aborted
// at the drain deadline. A listener that dies for any other reason is a
// daemon failure: wbserved logs it, drains, and exits non-zero so a
// supervisor restarts it.
//
// Usage:
//
//	wbserved -addr 127.0.0.1:4711 -max-sessions 64 -idle 30s
//	wbload -addr 127.0.0.1:4711 -n 64 -rate 100 -start 1.0 -payload 20 trace.csv
//
// Resilience knobs (DESIGN.md §13): -resume-ttl bounds how long a cut
// client's parked checkpoint survives (a background sweeper evicts
// stale ones), -stall arms the stuck-stream watchdog, and
// -shed-threshold turns on adaptive load shedding below the hard
// session cap.
//
// With -metrics the daemon writes an internal/obs JSON snapshot of the
// serving counters (sessions accepted/rejected/poisoned, bits served,
// resume/watchdog/shed accounting, drain duration) after the drain
// completes.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4711", "listen address")
	maxSessions := flag.Int("max-sessions", serve.DefaultMaxSessions, "concurrent session cap (admission control)")
	buffer := flag.Int("buffer", serve.DefaultSessionBuffer, "per-session measurement buffer (slot ring size)")
	idle := flag.Duration("idle", 30*time.Second, "per-line read deadline; a silent session is flushed (0 disables)")
	writeTimeout := flag.Duration("write-timeout", 10*time.Second, "per-response write deadline (0 disables)")
	drain := flag.Duration("drain", serve.DefaultDrainTimeout, "hard deadline for the graceful drain")
	resumeTTL := flag.Duration("resume-ttl", serve.DefaultResumeTTL, "how long a parked resume checkpoint survives")
	maxParked := flag.Int("max-parked", serve.DefaultMaxParked, "parked resume checkpoint cap (oldest evicted beyond it)")
	stall := flag.Duration("stall", 0, "stuck-stream watchdog deadline (0 disables the watchdog)")
	shedThreshold := flag.Float64("shed-threshold", 0, "pressure in (0,1] above which low-priority streams are shed (0 = hard cap only)")
	metrics := flag.String("metrics", "", "write a metrics JSON snapshot to this file after draining")
	flag.Parse()

	cfg := serve.Config{
		MaxSessions:   *maxSessions,
		SessionBuffer: *buffer,
		IdleTimeout:   *idle,
		WriteTimeout:  *writeTimeout,
		DrainTimeout:  *drain,
		ResumeTTL:     *resumeTTL,
		MaxParked:     *maxParked,
		StallTimeout:  *stall,
		ShedThreshold: *shedThreshold,
		Now:           time.Now,
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbserved:", err)
		os.Exit(1)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(cfg, l, *metrics, os.Stderr, stop); err != nil {
		fmt.Fprintln(os.Stderr, "wbserved:", err)
		os.Exit(1)
	}
}

// run serves on l until a stop signal arrives, then drains and (when
// asked) snapshots the metrics. The accept loop ending for any reason
// other than a stop signal — an accept error, or the listener closing
// under the daemon's feet — is reported as an error so main exits
// non-zero. Split from main so tests can drive it with their own
// listener and signal channel.
func run(cfg serve.Config, l net.Listener, metricsPath string, logw io.Writer, stop <-chan os.Signal) error {
	srv := serve.NewServer(cfg)
	fmt.Fprintf(logw, "wbserved: listening on %s (max %d sessions, buffer %d)\n",
		l.Addr(), cfg.MaxSessions, cfg.SessionBuffer)
	errc := make(chan error, 1)
	go func() { errc <- srv.ServeTCP(l) }()
	sweepStop := startResumeSweeper(srv, cfg.ResumeTTL, cfg.Now)

	var serveErr error
	select {
	case sig := <-stop:
		fmt.Fprintf(logw, "wbserved: %v: draining\n", sig)
		_ = l.Close()
		serveErr = <-errc
	case serveErr = <-errc:
		// Nobody asked the daemon to stop: the listener died on its own.
		// ServeTCP maps a closed listener to nil, so wrap that case too —
		// a silently vanished listener must not exit zero.
		_ = l.Close()
		if serveErr == nil {
			serveErr = fmt.Errorf("listener on %s closed unexpectedly", l.Addr())
		} else {
			serveErr = fmt.Errorf("listener on %s died: %w", l.Addr(), serveErr)
		}
		fmt.Fprintf(logw, "wbserved: %v: draining\n", serveErr)
	}
	sweepStop()
	drainErr := srv.Drain()
	st := srv.Stats()
	fmt.Fprintf(logw, "wbserved: drained in %.3fs: %d sessions completed, %d poisoned, %d aborted, %d bits served\n",
		st.DrainSeconds, st.Completed, st.Poisoned, st.Aborted, st.BitsServed)
	if metricsPath != "" {
		if err := writeMetrics(srv, metricsPath); err != nil {
			return err
		}
	}
	if serveErr != nil {
		return serveErr
	}
	return drainErr
}

// startResumeSweeper evicts expired resume checkpoints on a ticker at a
// quarter of the TTL. Neither the server nor this loop reads a clock of
// its own: now is the same injected clock the serve.Config carries, so a
// nil clock (deterministic tests) disables TTL eviction entirely —
// checkpoints parked without timestamps could never age out anyway. The
// returned function stops the sweeper and waits for it.
func startResumeSweeper(srv *serve.Server, ttl time.Duration, now func() time.Time) func() {
	if now == nil {
		return func() {}
	}
	if ttl <= 0 {
		ttl = serve.DefaultResumeTTL
	}
	interval := ttl / 4
	if interval < 250*time.Millisecond {
		interval = 250 * time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				srv.SweepResume(now())
			}
		}
	}()
	return func() {
		close(stop)
		wg.Wait()
	}
}

// writeMetrics publishes the server counters into a fresh obs registry
// and snapshots it as JSON.
func writeMetrics(srv *serve.Server, path string) error {
	reg := obs.NewRegistry()
	srv.PublishMetrics(reg)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
