package main

import (
	"bufio"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestRunServesAndDrains drives the daemon loop end to end: serve a
// session, deliver a stop signal mid-stream, and verify the graceful
// drain gives the client its final line, run returns clean, and the
// metrics snapshot lands on disk.
func TestRunServesAndDrains(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	metrics := filepath.Join(t.TempDir(), "metrics.json")
	stop := make(chan os.Signal, 1)
	var logw strings.Builder
	done := make(chan error, 1)
	cfg := serve.Config{DrainTimeout: 5 * time.Second, Now: time.Now}
	go func() { done <- run(cfg, l, metrics, &logw, stop) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := serve.AppendHello(nil, serve.SessionParams{
		BitRate: 100, Start: 1.0, PayloadLen: 8, Antennas: 2, Subchannels: 4,
	})
	if _, err := conn.Write(append(hello, '\n')); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatal("no response to hello")
	}
	if r, err := serve.ParseResponse(sc.Bytes()); err != nil || r.Kind != serve.RespOK {
		t.Fatalf("hello answered %+v, %v", r, err)
	}
	// A few in-frame measurements, then go mute: the drain must flush us.
	for i := 0; i < 40; i++ {
		line := "m " + "1.0" + strings.Repeat(" 10", 2+2*4) + "\n"
		if _, err := conn.Write([]byte(line)); err != nil {
			t.Fatal(err)
		}
	}
	stop <- os.Interrupt
	final := false
	for sc.Scan() {
		if r, err := serve.ParseResponse(sc.Bytes()); err == nil &&
			(r.Kind == serve.RespDone || r.Kind == serve.RespError) {
			final = true
		}
	}
	if !final {
		t.Error("drained session got no final line")
	}
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	snap, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("metrics snapshot: %v", err)
	}
	for _, name := range []string{"serve.sessions.accepted", "serve.bits_served", "serve.drain.seconds"} {
		if !strings.Contains(string(snap), name) {
			t.Errorf("metrics snapshot missing %s", name)
		}
	}
	if !strings.Contains(logw.String(), "draining") {
		t.Errorf("log missing the drain notice: %q", logw.String())
	}
}

// TestRunListenerDeath pins the exit-status contract: a stop signal is
// the one clean way down; the listener dying for any other reason makes
// run return an error (so main exits non-zero and a supervisor
// restarts the daemon), after logging and draining.
func TestRunListenerDeath(t *testing.T) {
	cases := []struct {
		name string
		kill func(l net.Listener, stop chan os.Signal)
		// wantErr is a substring the returned error must carry; empty
		// means run must return nil.
		wantErr string
	}{
		{
			name: "stop signal exits clean",
			kill: func(l net.Listener, stop chan os.Signal) { stop <- os.Interrupt },
		},
		{
			name:    "externally closed listener is a daemon failure",
			kill:    func(l net.Listener, stop chan os.Signal) { _ = l.Close() },
			wantErr: "closed unexpectedly",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan os.Signal, 1)
			var logw strings.Builder
			done := make(chan error, 1)
			cfg := serve.Config{DrainTimeout: time.Second, Now: time.Now}
			go func() { done <- run(cfg, l, "", &logw, stop) }()
			tc.kill(l, stop)
			select {
			case err := <-done:
				if tc.wantErr == "" {
					if err != nil {
						t.Fatalf("run: %v", err)
					}
				} else if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("run returned %v, want an error containing %q", err, tc.wantErr)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("run did not return")
			}
			if !strings.Contains(logw.String(), "draining") {
				t.Errorf("log missing the drain notice: %q", logw.String())
			}
		})
	}
}
