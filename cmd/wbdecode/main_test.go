package main

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/tracecsv"
	"repro/internal/uplink"
)

// buildCSV synthesizes a small but decodable CSI trace: 2 antennas × 4
// sub-channels, 1000 pkt/s, a framed transmission of alternating payload
// bits starting at t=1.0 at 100 bps. Channel (0,1) carries the modulation.
func buildCSV(t *testing.T, withState bool, rssiOnly bool) (string, []bool) {
	t.Helper()
	// Frame: 13-bit Barker preamble + payload + 13-bit inverted postamble.
	barker := []bool{true, true, true, true, true, false, false, true, true, false, true, false, true}
	payload := make([]bool, 20)
	for i := range payload {
		payload[i] = i%2 == 0
	}
	frame := append([]bool{}, barker...)
	frame = append(frame, payload...)
	for _, b := range barker {
		frame = append(frame, !b)
	}
	var sb strings.Builder
	if rssiOnly {
		sb.WriteString("packet,timestamp,tag_state,rssi_a0,rssi_a1\n")
	} else {
		sb.WriteString("packet,timestamp")
		if withState {
			sb.WriteString(",tag_state")
		}
		for a := 0; a < 2; a++ {
			for k := 0; k < 4; k++ {
				fmt.Fprintf(&sb, ",csi_a%d_s%d", a, k)
			}
		}
		sb.WriteString("\n")
	}
	const bitDur = 0.01
	for i := 0; i < 2000; i++ {
		ts := float64(i) * 0.001
		bit := 0
		j := int((ts - 1.0) / bitDur)
		if j >= 0 && j < len(frame) && frame[j] {
			bit = 1
		}
		// Deterministic dither so conditioning has texture.
		dither := 0.02 * math.Sin(float64(i)*0.7)
		if rssiOnly {
			fmt.Fprintf(&sb, "%d,%.6f,%d,%.2f,%.2f\n", i, ts, bit,
				30+2*float64(bit)+dither, 28+dither)
			continue
		}
		fmt.Fprintf(&sb, "%d,%.6f", i, ts)
		if withState {
			fmt.Fprintf(&sb, ",%d", bit)
		}
		for a := 0; a < 2; a++ {
			for k := 0; k < 4; k++ {
				v := 10.0 + dither
				if a == 0 && k == 1 {
					v += 2 * float64(bit) // the modulated channel
				}
				fmt.Fprintf(&sb, ",%.4f", v)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String(), payload
}

func TestRunDecodesCSITrace(t *testing.T) {
	csvData, _ := buildCSV(t, true, false)
	var out strings.Builder
	if err := run(strings.NewReader(csvData), &out, 100, 1.0, 20, "csi", false); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "10101010101010101010") {
		t.Errorf("decoded bits missing or wrong:\n%s", text)
	}
	if !strings.Contains(text, "ground truth BER:    0/20") {
		t.Errorf("ground truth BER not clean:\n%s", text)
	}
}

func TestRunDecodesRSSITrace(t *testing.T) {
	csvData, _ := buildCSV(t, true, true)
	var out strings.Builder
	if err := run(strings.NewReader(csvData), &out, 100, 1.0, 20, "rssi", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "10101010101010101010") {
		t.Errorf("RSSI decode wrong:\n%s", out.String())
	}
}

func TestRunInfersPayloadLength(t *testing.T) {
	csvData, _ := buildCSV(t, false, false)
	var out strings.Builder
	if err := run(strings.NewReader(csvData), &out, 100, 1.0, 0, "csi", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "payload bits:") {
		t.Errorf("inferred run produced no output:\n%s", out.String())
	}
	// Without tag_state there is no ground-truth line.
	if strings.Contains(out.String(), "ground truth") {
		t.Error("ground truth printed without a tag_state column")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(strings.NewReader("a,b\n"), &strings.Builder{}, 100, 1, 10, "csi", false); err == nil {
		t.Error("headers without measurements should error")
	}
	if err := run(strings.NewReader("timestamp,csi_a0_s0\n"), &strings.Builder{}, 100, 1, 10, "csi", false); err == nil {
		t.Error("empty trace should error")
	}
	csvData, _ := buildCSV(t, true, false)
	if err := run(strings.NewReader(csvData), &strings.Builder{}, 0, 1, 10, "csi", false); err == nil {
		t.Error("zero rate should error")
	}
	if err := run(strings.NewReader(csvData), &strings.Builder{}, 100, 1, 10, "nope", false); err == nil {
		t.Error("unknown mode should error")
	}
}

// TestRunFollowPrintsBitsBeforeSummary pins the -follow contract: every
// payload bit prints as a live `bit N = B` line (emitted at frame close,
// before the trace ends) ahead of the summary block, and the live bits
// agree with the summary's bit string.
func TestRunFollowPrintsBitsBeforeSummary(t *testing.T) {
	csvData, payload := buildCSV(t, true, false)
	var out strings.Builder
	if err := run(strings.NewReader(csvData), &out, 100, 1.0, 20, "csi", true); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for i, b := range payload {
		bit := 0
		if b {
			bit = 1
		}
		line := fmt.Sprintf("bit %3d = %d", i, bit)
		if !strings.Contains(text, line) {
			t.Errorf("live output missing %q:\n%s", line, text)
		}
	}
	lastLive := strings.LastIndex(text, "bit  19")
	summary := strings.Index(text, "measurements:")
	if lastLive == -1 || summary == -1 || lastLive > summary {
		t.Errorf("live bits should print before the summary:\n%s", text)
	}
}

// TestRunFollowRequiresPayload pins the flag interaction: inferring the
// payload length needs the whole trace, which contradicts -follow.
func TestRunFollowRequiresPayload(t *testing.T) {
	csvData, _ := buildCSV(t, false, false)
	err := run(strings.NewReader(csvData), &strings.Builder{}, 100, 1.0, 0, "csi", true)
	if err == nil || !strings.Contains(err.Error(), "-follow requires") {
		t.Errorf("follow without payload: got %v", err)
	}
}

// TestRunFollowTruncatedTrace pins the flush-time tail: when the trace
// ends inside the frame the bits only exist at Flush, and -follow still
// prints every one of them.
func TestRunFollowTruncatedTrace(t *testing.T) {
	csvData, _ := buildCSV(t, true, false)
	// Keep the header plus rows up to t=1.25s: mid-frame for a 20-bit
	// payload (frame spans 1.0–1.46s).
	lines := strings.Split(csvData, "\n")
	trunc := lines[:1+1250]
	var out strings.Builder
	if err := run(strings.NewReader(strings.Join(trunc, "\n")), &out, 100, 1.0, 20, "csi", true); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(out.String(), "bit "); n != 20 {
		t.Errorf("truncated follow printed %d bit lines, want 20:\n%s", n, out.String())
	}
}

// TestStreamingMatchesMaterialized pins the refactor's equivalence at the
// CLI layer: the explicit-payload streaming path and the legacy
// materialized decode print identical summaries.
func TestStreamingMatchesMaterialized(t *testing.T) {
	csvData, _ := buildCSV(t, true, false)
	var streamed strings.Builder
	if err := run(strings.NewReader(csvData), &streamed, 100, 1.0, 20, "csi", false); err != nil {
		t.Fatal(err)
	}
	tr, err := tracecsv.ReadTrace(strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Series.Len() != 2000 {
		t.Fatalf("parsed %d rows", tr.Series.Len())
	}
	// The inference path materializes; with this trace span it infers a
	// payload of int((1.999-1.0)/0.01)-26 = 73 bits, so compare against a
	// batch decode at the explicit length instead.
	var batchOut strings.Builder
	func() {
		dec, err := uplink.NewDecoder(uplink.DefaultConfig(0.01))
		if err != nil {
			t.Fatal(err)
		}
		res, err := dec.DecodeCSI(&tr.Series, 1.0, 20)
		if err != nil {
			t.Fatal(err)
		}
		truth := newTruthAccum(1.0, 0.01, 13+20+13)
		for i, m := range tr.Series.Measurements {
			truth.add(m.Timestamp, tr.States[i])
		}
		summarize(&batchOut, dec, res, tr.Series.Len(), 20, truth)
	}()
	if streamed.String() != batchOut.String() {
		t.Errorf("streamed CLI output differs from materialized decode:\n--- streamed ---\n%s--- batch ---\n%s",
			streamed.String(), batchOut.String())
	}
}

func TestParseTraceShapes(t *testing.T) {
	csvData, _ := buildCSV(t, true, false)
	tr, err := tracecsv.ReadTrace(strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Series.Len() != 2000 {
		t.Errorf("parsed %d measurements", tr.Series.Len())
	}
	if tr.Series.Antennas() != 2 || tr.Series.Subchannels() != 4 {
		t.Errorf("shape = (%d, %d)", tr.Series.Antennas(), tr.Series.Subchannels())
	}
	if !tr.HasState || len(tr.States) != 2000 {
		t.Error("tag_state column not parsed")
	}
}

// runOnPipe writes data into a real pipe (cut exactly where the producer
// "died"), closes the write end, and runs wbdecode's streaming -follow
// path on the read end — the shape of `producer | wbdecode -follow` when
// the producer is killed. It returns the output and run's error, whose
// nil-ness is what decides the process exit status in main.
func runOnPipe(t *testing.T, data string, payload int) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	go func() {
		defer w.Close()
		_, _ = io.WriteString(w, data)
	}()
	var out strings.Builder
	runErr := run(r, &out, 100, 1.0, payload, "csi", true)
	return out.String(), runErr
}

// TestRunFollowPipeTruncation pins the -follow contract on a pipe whose
// producer dies at every interesting point relative to the frame window
// (1.0s–1.46s at 100 bps × 20 payload bits, rows every 1 ms):
//
//   - before the frame: nothing to decode — error exit, no bit lines;
//   - inside the frame: clean row boundary is EOF — Flush salvages the
//     partial frame, prints all 20 bits and a summary, exit 0;
//   - inside the frame, cut mid-row: same salvage output, but the
//     truncation is reported so the exit status is nonzero;
//   - after the frame: bits were already emitted live at frame close —
//     full output, exit 0.
func TestRunFollowPipeTruncation(t *testing.T) {
	csvData, _ := buildCSV(t, true, false)
	lines := strings.Split(csvData, "\n")

	cases := []struct {
		name      string
		data      string
		wantErr   bool
		truncated bool
		wantBits  int
	}{
		{"before frame", strings.Join(lines[:1+800], "\n"), true, false, 0},
		{"inside frame", strings.Join(lines[:1+1250], "\n"), false, false, 20},
		{"inside frame mid-row", strings.Join(lines[:1+1250], "\n") + "\n" + lines[1251][:10], true, true, 20},
		{"after frame", strings.Join(lines[:1+1600], "\n"), false, false, 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := runOnPipe(t, tc.data, 20)
			if (err != nil) != tc.wantErr {
				t.Fatalf("run error = %v, want error: %v\n%s", err, tc.wantErr, out)
			}
			if tc.truncated && !errors.Is(err, tracecsv.ErrTruncatedRow) {
				t.Errorf("mid-row cut should report ErrTruncatedRow, got %v", err)
			}
			if n := strings.Count(out, "bit "); n != tc.wantBits {
				t.Errorf("printed %d bit lines, want %d:\n%s", n, tc.wantBits, out)
			}
			// Whenever any bits decoded, the Flush summary must follow.
			if tc.wantBits > 0 && !strings.Contains(out, "measurements:") {
				t.Errorf("salvaged bits missing their summary:\n%s", out)
			}
		})
	}
}
