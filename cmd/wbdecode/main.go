// Command wbdecode runs the Wi-Fi Backscatter uplink decoder offline over
// a CSV measurement trace (the format cmd/wbtrace emits: one row per
// packet with a timestamp and per-(antenna, sub-channel) CSI amplitudes or
// per-antenna RSSI). This is the decoder as a standalone artifact: a trace
// collected elsewhere — including a real Intel CSI Tool capture exported
// to the same schema — decodes without the simulator.
//
// With an explicit -payload the trace is decoded incrementally: rows are
// parsed one at a time into a reused record and pushed straight into an
// uplink.StreamDecoder, so memory stays constant in the trace length —
// the decoder buffers only the measurements inside the transmission
// window, and wbdecode itself holds one row plus fixed-size ground-truth
// counters. That is what makes `-follow` work on a live pipe: bits print
// the moment the frame closes, while the producer is still writing.
// Without -payload the length is inferred from the trace span, which
// requires reading the whole trace first (the only materialized path).
//
// Usage:
//
//	wbtrace -what csi > trace.csv
//	wbdecode -rate 100 -start 1.0 -payload 300 < trace.csv
//	wbtrace -what csi | wbdecode -rate 100 -start 1.0 -payload 300 -follow
//
// When the trace carries a tag_state column (ground truth from the
// simulator), wbdecode also reports the bit error rate.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/csi"
	"repro/internal/uplink"
)

func main() {
	rate := flag.Float64("rate", 100, "tag bit rate in bits/s")
	start := flag.Float64("start", 1.0, "transmission start time in seconds")
	payload := flag.Int("payload", 0, "payload bits (0 = infer from trace span)")
	mode := flag.String("mode", "csi", "csi or rssi")
	follow := flag.Bool("follow", false, "print bits as they decode (requires -payload)")
	flag.Parse()

	if err := run(os.Stdin, os.Stdout, *rate, *start, *payload, *mode, *follow); err != nil {
		fmt.Fprintln(os.Stderr, "wbdecode:", err)
		os.Exit(1)
	}
}

// chanCol maps one CSV column to a measurement lane.
type chanCol struct{ ant, sub, col int }

// rowParser streams the wbtrace CSV schema one row at a time. The header
// is consumed at construction; next fills a single reused Measurement, so
// steady-state parsing does not allocate per row.
type rowParser struct {
	cr       *csv.Reader
	tsCol    int
	stateCol int
	hasState bool
	csiCols  []chanCol
	rssiCols []chanCol
	m        csi.Measurement
}

// newRowParser reads the header and discovers the measurement layout from
// the column names.
func newRowParser(r io.Reader) (*rowParser, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	col := map[string]int{}
	for i, name := range header {
		col[name] = i
	}
	tsCol, ok := col["timestamp"]
	if !ok {
		return nil, fmt.Errorf("trace has no timestamp column")
	}
	p := &rowParser{cr: cr, tsCol: tsCol}
	p.stateCol, p.hasState = col["tag_state"]
	maxAnt, maxSub := -1, -1
	for name, i := range col {
		var a, k int
		if n, _ := fmt.Sscanf(name, "csi_a%d_s%d", &a, &k); n == 2 {
			p.csiCols = append(p.csiCols, chanCol{a, k, i})
			if a > maxAnt {
				maxAnt = a
			}
			if k > maxSub {
				maxSub = k
			}
		} else if n, _ := fmt.Sscanf(name, "rssi_a%d", &a); n == 1 && strings.HasPrefix(name, "rssi_") {
			p.rssiCols = append(p.rssiCols, chanCol{a, 0, i})
			if a > maxAnt {
				maxAnt = a
			}
		}
	}
	if len(p.csiCols) == 0 && len(p.rssiCols) == 0 {
		return nil, fmt.Errorf("trace has neither csi_a*_s* nor rssi_a* columns")
	}
	// Pre-size the reused measurement to the discovered shape.
	p.m.CSI = make([][]float64, maxAnt+1)
	p.m.RSSI = make([]float64, maxAnt+1)
	for a := range p.m.CSI {
		if len(p.csiCols) > 0 {
			p.m.CSI[a] = make([]float64, maxSub+1)
		} else {
			p.m.CSI[a] = []float64{0}
		}
	}
	return p, nil
}

// next parses one row into the parser's reused measurement. The returned
// measurement and its slices are only valid until the following call —
// consumers that retain rows (parseTrace) must clone. ok is false at EOF.
func (p *rowParser) next() (m csi.Measurement, state, ok bool, err error) {
	row, err := p.cr.Read()
	if err == io.EOF {
		return csi.Measurement{}, false, false, nil
	}
	if err != nil {
		return csi.Measurement{}, false, false, err
	}
	ts, err := strconv.ParseFloat(row[p.tsCol], 64)
	if err != nil {
		return csi.Measurement{}, false, false, fmt.Errorf("bad timestamp %q: %w", row[p.tsCol], err)
	}
	p.m.Timestamp = ts
	if len(p.csiCols) > 0 {
		for _, c := range p.csiCols {
			v, err := strconv.ParseFloat(row[c.col], 64)
			if err != nil {
				return csi.Measurement{}, false, false, fmt.Errorf("bad CSI value: %w", err)
			}
			p.m.CSI[c.ant][c.sub] = v
		}
	} else {
		for _, c := range p.rssiCols {
			v, err := strconv.ParseFloat(row[c.col], 64)
			if err != nil {
				return csi.Measurement{}, false, false, fmt.Errorf("bad RSSI value: %w", err)
			}
			p.m.RSSI[c.ant] = v
		}
	}
	if p.hasState {
		state = row[p.stateCol] == "1"
	}
	return p.m, state, true, nil
}

// trace holds a fully materialized CSV measurement trace — only the
// payload-length inference path needs one.
type trace struct {
	series   csi.Series
	states   []bool // per-packet tag state, when present
	hasState bool
}

// parseTrace reads the whole trace through a rowParser, cloning each
// reused row into the series.
func parseTrace(r io.Reader) (*trace, error) {
	p, err := newRowParser(r)
	if err != nil {
		return nil, err
	}
	tr := &trace{hasState: p.hasState}
	for {
		m, state, ok, err := p.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		clone := csi.Measurement{
			Timestamp: m.Timestamp,
			CSI:       make([][]float64, len(m.CSI)),
			RSSI:      append([]float64(nil), m.RSSI...),
		}
		for a := range m.CSI {
			clone.CSI[a] = append([]float64(nil), m.CSI[a]...)
		}
		tr.series.Append(clone)
		if p.hasState {
			tr.states = append(tr.states, state)
		}
	}
	return tr, nil
}

// truthAccum accumulates ground truth from the tag_state column in fixed
// space: per-bit one/total counters over the frame, majority at the end.
// It replicates trace.groundTruth bit for bit (same int() truncation).
type truthAccum struct {
	start, bitDur float64
	ones, total   []int
}

func newTruthAccum(start, bitDur float64, nbits int) *truthAccum {
	return &truthAccum{start: start, bitDur: bitDur, ones: make([]int, nbits), total: make([]int, nbits)}
}

func (ta *truthAccum) add(ts float64, state bool) {
	j := int((ts - ta.start) / ta.bitDur)
	if j < 0 || j >= len(ta.total) {
		return
	}
	ta.total[j]++
	if state {
		ta.ones[j]++
	}
}

func (ta *truthAccum) bits() []bool {
	bits := make([]bool, len(ta.total))
	for j := range bits {
		bits[j] = ta.ones[j]*2 > ta.total[j]
	}
	return bits
}

// groundTruth reconstructs the transmitted payload bits from the trace's
// tag_state column by majority over each bit window.
func (tr *trace) groundTruth(start, bitDur float64, nbits int) []bool {
	ta := newTruthAccum(start, bitDur, nbits)
	for i, m := range tr.series.Measurements {
		ta.add(m.Timestamp, tr.states[i])
	}
	return ta.bits()
}

func run(in io.Reader, out io.Writer, rate, start float64, payloadLen int, mode string, follow bool) error {
	if rate <= 0 {
		return fmt.Errorf("rate must be positive")
	}
	var smode uplink.StreamMode
	switch mode {
	case "csi":
		smode = uplink.StreamCSI
	case "rssi":
		smode = uplink.StreamRSSI
	default:
		return fmt.Errorf("unknown -mode %q", mode)
	}
	bitDur := 1 / rate
	if payloadLen <= 0 {
		if follow {
			return fmt.Errorf("-follow requires an explicit -payload (inferring the length needs the whole trace)")
		}
		return runInferred(in, out, rate, start, mode)
	}

	// Streaming path: constant memory in the trace length. One reused row,
	// the decoder's frame-bounded arena, and fixed-size truth counters.
	p, err := newRowParser(in)
	if err != nil {
		return err
	}
	dec, err := uplink.NewDecoder(uplink.DefaultConfig(bitDur))
	if err != nil {
		return err
	}
	sd, err := dec.NewStream(start, payloadLen, smode)
	if err != nil {
		return err
	}
	nbits := 13 + payloadLen + 13
	var truth *truthAccum
	if p.hasState {
		truth = newTruthAccum(start, bitDur, nbits)
	}
	count := 0
	emittedLive := false
	for {
		m, state, ok, err := p.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		count++
		if truth != nil {
			truth.add(m.Timestamp, state)
		}
		bits, err := sd.Push(m)
		if err != nil {
			return err
		}
		if follow && len(bits) > 0 {
			printLive(out, bits)
			emittedLive = true
		}
	}
	if count == 0 {
		return fmt.Errorf("trace is empty")
	}
	res, err := sd.Flush()
	if err != nil {
		return err
	}
	if follow && !emittedLive {
		// The trace ended inside the frame, so the bits only exist now.
		printLive(out, sd.Bits())
	}
	summarize(out, dec, res, count, payloadLen, truth)
	return nil
}

// printLive prints bit decisions the moment Push emits them.
func printLive(out io.Writer, bits []uplink.BitDecision) {
	for _, b := range bits {
		bit := 0
		if b.Bit {
			bit = 1
		}
		fmt.Fprintf(out, "bit %3d = %d  (%d measurements)\n", b.Index, bit, b.Measurements)
	}
}

// summarize prints the decode report shared by both paths.
func summarize(out io.Writer, dec *uplink.Decoder, res *uplink.Result, measurements, payloadLen int, truth *truthAccum) {
	fmt.Fprintf(out, "measurements:        %d\n", measurements)
	fmt.Fprintf(out, "payload bits:        %d\n", payloadLen)
	fmt.Fprintf(out, "measurements/bit:    %.1f\n", res.MeasurementsPerBit)
	fmt.Fprintf(out, "preamble correlation: %.3f (detected: %v)\n",
		res.PreambleCorrelation, dec.Detected(res))
	fmt.Fprintf(out, "channels used:       %v\n", res.Good)
	fmt.Fprintf(out, "bits: %s\n", bitString(res.Payload))
	if truth != nil {
		tbits := truth.bits()
		errs := 0
		for i := 0; i < payloadLen; i++ {
			if res.Payload[i] != tbits[13+i] {
				errs++
			}
		}
		fmt.Fprintf(out, "ground truth BER:    %d/%d = %.2e\n",
			errs, payloadLen, float64(errs)/float64(payloadLen))
	}
}

// runInferred is the materialized path: payload length comes from the
// trace span, so the whole trace must be read before decoding.
func runInferred(in io.Reader, out io.Writer, rate, start float64, mode string) error {
	tr, err := parseTrace(in)
	if err != nil {
		return err
	}
	if tr.series.Len() == 0 {
		return fmt.Errorf("trace is empty")
	}
	bitDur := 1 / rate
	last := tr.series.Measurements[tr.series.Len()-1].Timestamp
	payloadLen := int((last-start)/bitDur) - 26
	if payloadLen <= 0 {
		return fmt.Errorf("trace too short to infer a payload length")
	}
	dec, err := uplink.NewDecoder(uplink.DefaultConfig(bitDur))
	if err != nil {
		return err
	}
	var res *uplink.Result
	switch mode {
	case "csi":
		res, err = dec.DecodeCSI(&tr.series, start, payloadLen)
	case "rssi":
		res, err = dec.DecodeRSSI(&tr.series, start, payloadLen)
	}
	if err != nil {
		return err
	}
	var truth *truthAccum
	if tr.hasState {
		truth = newTruthAccum(start, bitDur, 13+payloadLen+13)
		for i, m := range tr.series.Measurements {
			truth.add(m.Timestamp, tr.states[i])
		}
	}
	summarize(out, dec, res, tr.series.Len(), payloadLen, truth)
	return nil
}

func bitString(bits []bool) string {
	var b strings.Builder
	for _, bit := range bits {
		if bit {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
