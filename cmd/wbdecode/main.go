// Command wbdecode runs the Wi-Fi Backscatter uplink decoder offline over
// a CSV measurement trace (the format cmd/wbtrace emits: one row per
// packet with a timestamp and per-(antenna, sub-channel) CSI amplitudes or
// per-antenna RSSI). This is the decoder as a standalone artifact: a trace
// collected elsewhere — including a real Intel CSI Tool capture exported
// to the same schema — decodes without the simulator.
//
// Usage:
//
//	wbtrace -what csi > trace.csv
//	wbdecode -rate 100 -start 1.0 -payload 300 < trace.csv
//
// When the trace carries a tag_state column (ground truth from the
// simulator), wbdecode also reports the bit error rate.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/csi"
	"repro/internal/uplink"
)

func main() {
	rate := flag.Float64("rate", 100, "tag bit rate in bits/s")
	start := flag.Float64("start", 1.0, "transmission start time in seconds")
	payload := flag.Int("payload", 0, "payload bits (0 = infer from trace span)")
	mode := flag.String("mode", "csi", "csi or rssi")
	flag.Parse()

	if err := run(os.Stdin, os.Stdout, *rate, *start, *payload, *mode); err != nil {
		fmt.Fprintln(os.Stderr, "wbdecode:", err)
		os.Exit(1)
	}
}

// trace holds a parsed CSV measurement trace.
type trace struct {
	series   csi.Series
	states   []bool // per-packet tag state, when present
	hasState bool
}

// parseTrace reads the wbtrace CSV schema.
func parseTrace(r io.Reader) (*trace, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	col := map[string]int{}
	for i, name := range header {
		col[name] = i
	}
	tsCol, ok := col["timestamp"]
	if !ok {
		return nil, fmt.Errorf("trace has no timestamp column")
	}
	stateCol, hasState := col["tag_state"]
	// Discover the measurement layout from column names.
	type chanCol struct{ ant, sub, col int }
	var csiCols []chanCol
	var rssiCols []chanCol
	maxAnt, maxSub := -1, -1
	for name, i := range col {
		var a, k int
		if n, _ := fmt.Sscanf(name, "csi_a%d_s%d", &a, &k); n == 2 {
			csiCols = append(csiCols, chanCol{a, k, i})
			if a > maxAnt {
				maxAnt = a
			}
			if k > maxSub {
				maxSub = k
			}
		} else if n, _ := fmt.Sscanf(name, "rssi_a%d", &a); n == 1 && strings.HasPrefix(name, "rssi_") {
			rssiCols = append(rssiCols, chanCol{a, 0, i})
			if a > maxAnt {
				maxAnt = a
			}
		}
	}
	if len(csiCols) == 0 && len(rssiCols) == 0 {
		return nil, fmt.Errorf("trace has neither csi_a*_s* nor rssi_a* columns")
	}
	tr := &trace{hasState: hasState}
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		ts, err := strconv.ParseFloat(row[tsCol], 64)
		if err != nil {
			return nil, fmt.Errorf("bad timestamp %q: %w", row[tsCol], err)
		}
		m := csi.Measurement{Timestamp: ts}
		if len(csiCols) > 0 {
			m.CSI = make([][]float64, maxAnt+1)
			for a := range m.CSI {
				m.CSI[a] = make([]float64, maxSub+1)
			}
			m.RSSI = make([]float64, maxAnt+1)
			for _, c := range csiCols {
				v, err := strconv.ParseFloat(row[c.col], 64)
				if err != nil {
					return nil, fmt.Errorf("bad CSI value: %w", err)
				}
				m.CSI[c.ant][c.sub] = v
			}
		} else {
			m.CSI = make([][]float64, maxAnt+1)
			m.RSSI = make([]float64, maxAnt+1)
			for a := range m.CSI {
				m.CSI[a] = []float64{0}
			}
			for _, c := range rssiCols {
				v, err := strconv.ParseFloat(row[c.col], 64)
				if err != nil {
					return nil, fmt.Errorf("bad RSSI value: %w", err)
				}
				m.RSSI[c.ant] = v
			}
		}
		tr.series.Append(m)
		if hasState {
			tr.states = append(tr.states, row[stateCol] == "1")
		}
	}
	return tr, nil
}

// groundTruth reconstructs the transmitted payload bits from the trace's
// tag_state column by majority over each bit window.
func (tr *trace) groundTruth(start, bitDur float64, nbits int) []bool {
	ones := make([]int, nbits)
	total := make([]int, nbits)
	for i, m := range tr.series.Measurements {
		j := int((m.Timestamp - start) / bitDur)
		if j < 0 || j >= nbits {
			continue
		}
		total[j]++
		if tr.states[i] {
			ones[j]++
		}
	}
	bits := make([]bool, nbits)
	for j := range bits {
		bits[j] = ones[j]*2 > total[j]
	}
	return bits
}

func run(in io.Reader, out io.Writer, rate, start float64, payloadLen int, mode string) error {
	if rate <= 0 {
		return fmt.Errorf("rate must be positive")
	}
	tr, err := parseTrace(in)
	if err != nil {
		return err
	}
	if tr.series.Len() == 0 {
		return fmt.Errorf("trace is empty")
	}
	bitDur := 1 / rate
	if payloadLen <= 0 {
		// Infer from the span after the start time, minus framing.
		last := tr.series.Measurements[tr.series.Len()-1].Timestamp
		payloadLen = int((last-start)/bitDur) - 26
		if payloadLen <= 0 {
			return fmt.Errorf("trace too short to infer a payload length")
		}
	}
	dec, err := uplink.NewDecoder(uplink.DefaultConfig(bitDur))
	if err != nil {
		return err
	}
	var res *uplink.Result
	switch mode {
	case "csi":
		res, err = dec.DecodeCSI(&tr.series, start, payloadLen)
	case "rssi":
		res, err = dec.DecodeRSSI(&tr.series, start, payloadLen)
	default:
		return fmt.Errorf("unknown -mode %q", mode)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "measurements:        %d\n", tr.series.Len())
	fmt.Fprintf(out, "payload bits:        %d\n", payloadLen)
	fmt.Fprintf(out, "measurements/bit:    %.1f\n", res.MeasurementsPerBit)
	fmt.Fprintf(out, "preamble correlation: %.3f (detected: %v)\n",
		res.PreambleCorrelation, dec.Detected(res))
	fmt.Fprintf(out, "channels used:       %v\n", res.Good)
	fmt.Fprintf(out, "bits: %s\n", bitString(res.Payload))
	if tr.hasState {
		truth := tr.groundTruth(start, bitDur, 13+payloadLen+13)
		errs := 0
		for i := 0; i < payloadLen; i++ {
			if res.Payload[i] != truth[13+i] {
				errs++
			}
		}
		fmt.Fprintf(out, "ground truth BER:    %d/%d = %.2e\n",
			errs, payloadLen, float64(errs)/float64(payloadLen))
	}
	return nil
}

func bitString(bits []bool) string {
	var b strings.Builder
	for _, bit := range bits {
		if bit {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
