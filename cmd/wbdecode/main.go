// Command wbdecode runs the Wi-Fi Backscatter uplink decoder offline over
// a CSV measurement trace (the format cmd/wbtrace emits: one row per
// packet with a timestamp and per-(antenna, sub-channel) CSI amplitudes or
// per-antenna RSSI). This is the decoder as a standalone artifact: a trace
// collected elsewhere — including a real Intel CSI Tool capture exported
// to the same schema — decodes without the simulator.
//
// With an explicit -payload the trace is decoded incrementally: rows are
// parsed one at a time into a reused record and pushed straight into an
// uplink.StreamDecoder, so memory stays constant in the trace length —
// the decoder buffers only the measurements inside the transmission
// window, and wbdecode itself holds one row plus fixed-size ground-truth
// counters. That is what makes `-follow` work on a live pipe: bits print
// the moment the frame closes, while the producer is still writing.
// Without -payload the length is inferred from the trace span, which
// requires reading the whole trace first (the only materialized path).
//
// Usage:
//
//	wbtrace -what csi > trace.csv
//	wbdecode -rate 100 -start 1.0 -payload 300 < trace.csv
//	wbtrace -what csi | wbdecode -rate 100 -start 1.0 -payload 300 -follow
//
// When the trace carries a tag_state column (ground truth from the
// simulator), wbdecode also reports the bit error rate.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/tracecsv"
	"repro/internal/uplink"
)

func main() {
	rate := flag.Float64("rate", 100, "tag bit rate in bits/s")
	start := flag.Float64("start", 1.0, "transmission start time in seconds")
	payload := flag.Int("payload", 0, "payload bits (0 = infer from trace span)")
	mode := flag.String("mode", "csi", "csi or rssi")
	follow := flag.Bool("follow", false, "print bits as they decode (requires -payload)")
	flag.Parse()

	if err := run(os.Stdin, os.Stdout, *rate, *start, *payload, *mode, *follow); err != nil {
		fmt.Fprintln(os.Stderr, "wbdecode:", err)
		os.Exit(1)
	}
}

// truthAccum accumulates ground truth from the tag_state column in fixed
// space: per-bit one/total counters over the frame, majority at the end.
// It replicates trace.groundTruth bit for bit (same int() truncation).
type truthAccum struct {
	start, bitDur float64
	ones, total   []int
}

func newTruthAccum(start, bitDur float64, nbits int) *truthAccum {
	return &truthAccum{start: start, bitDur: bitDur, ones: make([]int, nbits), total: make([]int, nbits)}
}

func (ta *truthAccum) add(ts float64, state bool) {
	j := int((ts - ta.start) / ta.bitDur)
	if j < 0 || j >= len(ta.total) {
		return
	}
	ta.total[j]++
	if state {
		ta.ones[j]++
	}
}

func (ta *truthAccum) bits() []bool {
	bits := make([]bool, len(ta.total))
	for j := range bits {
		bits[j] = ta.ones[j]*2 > ta.total[j]
	}
	return bits
}

func run(in io.Reader, out io.Writer, rate, start float64, payloadLen int, mode string, follow bool) error {
	if rate <= 0 {
		return fmt.Errorf("rate must be positive")
	}
	var smode uplink.StreamMode
	switch mode {
	case "csi":
		smode = uplink.StreamCSI
	case "rssi":
		smode = uplink.StreamRSSI
	default:
		return fmt.Errorf("unknown -mode %q", mode)
	}
	bitDur := 1 / rate
	if payloadLen <= 0 {
		if follow {
			return fmt.Errorf("-follow requires an explicit -payload (inferring the length needs the whole trace)")
		}
		return runInferred(in, out, rate, start, mode)
	}

	// Streaming path: constant memory in the trace length. One reused row,
	// the decoder's frame-bounded arena, and fixed-size truth counters.
	p, err := tracecsv.NewParser(in)
	if err != nil {
		return err
	}
	dec, err := uplink.NewDecoder(uplink.DefaultConfig(bitDur))
	if err != nil {
		return err
	}
	sd, err := dec.NewStream(start, payloadLen, smode)
	if err != nil {
		return err
	}
	nbits := 13 + payloadLen + 13
	var truth *truthAccum
	if p.HasState() {
		truth = newTruthAccum(start, bitDur, nbits)
	}
	count := 0
	emittedLive := false
	// A pipe cut mid-row (the producer died) is EOF-equivalent for
	// decoding — every complete row already arrived, so the flush below
	// still salvages and prints the frame — but the loss is reported: the
	// error propagates after the summary, so the exit status is nonzero.
	var truncated error
	for {
		m, state, ok, err := p.Next()
		if err != nil {
			if errors.Is(err, tracecsv.ErrTruncatedRow) {
				truncated = err
				break
			}
			return err
		}
		if !ok {
			break
		}
		count++
		if truth != nil {
			truth.add(m.Timestamp, state)
		}
		bits, err := sd.Push(m)
		if err != nil {
			return err
		}
		if follow && len(bits) > 0 {
			printLive(out, bits)
			emittedLive = true
		}
	}
	if count == 0 {
		if truncated != nil {
			return truncated
		}
		return fmt.Errorf("trace is empty")
	}
	res, err := sd.Flush()
	if err != nil {
		return err
	}
	if follow && !emittedLive {
		// The trace ended inside the frame, so the bits only exist now.
		printLive(out, sd.Bits())
	}
	summarize(out, dec, res, count, payloadLen, truth)
	return truncated
}

// printLive prints bit decisions the moment Push emits them.
func printLive(out io.Writer, bits []uplink.BitDecision) {
	for _, b := range bits {
		bit := 0
		if b.Bit {
			bit = 1
		}
		fmt.Fprintf(out, "bit %3d = %d  (%d measurements)\n", b.Index, bit, b.Measurements)
	}
}

// summarize prints the decode report shared by both paths.
func summarize(out io.Writer, dec *uplink.Decoder, res *uplink.Result, measurements, payloadLen int, truth *truthAccum) {
	fmt.Fprintf(out, "measurements:        %d\n", measurements)
	fmt.Fprintf(out, "payload bits:        %d\n", payloadLen)
	fmt.Fprintf(out, "measurements/bit:    %.1f\n", res.MeasurementsPerBit)
	fmt.Fprintf(out, "preamble correlation: %.3f (detected: %v)\n",
		res.PreambleCorrelation, dec.Detected(res))
	fmt.Fprintf(out, "channels used:       %v\n", res.Good)
	fmt.Fprintf(out, "bits: %s\n", bitString(res.Payload))
	if truth != nil {
		tbits := truth.bits()
		errs := 0
		for i := 0; i < payloadLen; i++ {
			if res.Payload[i] != tbits[13+i] {
				errs++
			}
		}
		fmt.Fprintf(out, "ground truth BER:    %d/%d = %.2e\n",
			errs, payloadLen, float64(errs)/float64(payloadLen))
	}
}

// runInferred is the materialized path: payload length comes from the
// trace span, so the whole trace must be read before decoding.
func runInferred(in io.Reader, out io.Writer, rate, start float64, mode string) error {
	tr, err := tracecsv.ReadTrace(in)
	if err != nil {
		return err
	}
	if tr.Series.Len() == 0 {
		return fmt.Errorf("trace is empty")
	}
	bitDur := 1 / rate
	last := tr.Series.Measurements[tr.Series.Len()-1].Timestamp
	payloadLen := int((last-start)/bitDur) - 26
	if payloadLen <= 0 {
		return fmt.Errorf("trace too short to infer a payload length")
	}
	dec, err := uplink.NewDecoder(uplink.DefaultConfig(bitDur))
	if err != nil {
		return err
	}
	var res *uplink.Result
	switch mode {
	case "csi":
		res, err = dec.DecodeCSI(&tr.Series, start, payloadLen)
	case "rssi":
		res, err = dec.DecodeRSSI(&tr.Series, start, payloadLen)
	}
	if err != nil {
		return err
	}
	var truth *truthAccum
	if tr.HasState {
		truth = newTruthAccum(start, bitDur, 13+payloadLen+13)
		for i, m := range tr.Series.Measurements {
			truth.add(m.Timestamp, tr.States[i])
		}
	}
	summarize(out, dec, res, tr.Series.Len(), payloadLen, truth)
	return nil
}

func bitString(bits []bool) string {
	var b strings.Builder
	for _, bit := range bits {
		if bit {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
