// Command wbsim runs one Wi-Fi Backscatter scenario end to end: it builds
// a deployment (helper, reader, tag at configurable distances), runs a
// full query→response transaction, and prints the outcome of every stage.
//
// Usage:
//
//	wbsim [-tag-dist cm] [-helper-dist m] [-rate bps] [-data hex] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/reader"
	"repro/internal/units"
	"repro/internal/wifi"
)

func main() {
	tagDist := flag.Float64("tag-dist", 20, "tag to reader distance in cm")
	helperDist := flag.Float64("helper-dist", 3, "helper to tag distance in m")
	rate := flag.Uint("rate", 100, "uplink bit rate in bps advised to the tag")
	helperRate := flag.Float64("helper-rate", 1000, "helper traffic in packets/s")
	data := flag.Uint64("data", 0xBEEF00C0FFEE, "48-bit tag payload to report")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	sys, err := core.NewSystem(core.Config{
		Seed:              *seed,
		TagReaderDistance: units.Centimeters(*tagDist),
		HelperTagDistance: units.Meters(*helperDist),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbsim:", err)
		os.Exit(1)
	}
	fmt.Printf("deployment: tag %.0f cm from reader, helper %.1f m away, %.0f pkt/s\n",
		*tagDist, *helperDist, *helperRate)
	fmt.Printf("uplink modulation depth: %.1f%%\n", 100*sys.ModulationDepth())

	(&wifi.CBRSource{
		Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 1 / *helperRate,
	}).Start()
	sys.Run(0.3) // warm up traffic

	q := reader.Query{Command: reader.CmdRead, TagID: 0x0042, BitRate: uint16(*rate)}
	res, err := sys.RunQuery(q, *data, core.DefaultTransactionConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "wbsim:", err)
		os.Exit(1)
	}
	fmt.Printf("query: cmd=%d tag=%#04x rate=%d bps\n", q.Command, q.TagID, q.BitRate)
	fmt.Printf("attempts: %d\n", res.Attempts)
	fmt.Printf("downlink (reader→tag): decoded=%v heard=%+v\n", res.TagDecoded, res.TagHeard)
	fmt.Printf("uplink (tag→reader):  ok=%v correlation=%.2f\n", res.ResponseOK, res.ResponseCorrelation)
	if res.ResponseOK {
		fmt.Printf("tag reported: %#012x\n", res.ResponseData)
		if res.ResponseData != *data&((1<<48)-1) {
			fmt.Println("WARNING: payload mismatch")
			os.Exit(1)
		}
		fmt.Println("round trip complete: payload verified")
		return
	}
	fmt.Println("transaction failed: no decodable response")
	os.Exit(1)
}
