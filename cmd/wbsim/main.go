// Command wbsim runs one Wi-Fi Backscatter scenario end to end: it builds
// a deployment (helper, reader, tag at configurable distances), runs a
// full query→response transaction, and prints the outcome of every stage.
//
// Usage:
//
//	wbsim [-tag-dist cm] [-helper-dist m] [-rate bps] [-data hex] [-seed N]
//	      [-faults profile|spec] [-metrics out.json]
//
// -faults impairs the channel with a deterministic fault schedule: a named
// profile ("lossy", "chaos:0.5", ...) or an explicit schedule such as
// "burst@0:2x0.7;fade@1:3x0.5" (see internal/faults). The printed outcome
// then includes the per-query fault verdict and backoff spent.
//
// -metrics writes the deployment's pipeline metrics (engine, medium,
// decoder, encoder, transaction counters) as deterministic JSON after the
// transaction completes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/reader"
	"repro/internal/units"
	"repro/internal/wifi"
)

// options carries the parsed command line.
type options struct {
	tagDist     float64 // cm
	helperDist  float64 // m
	rate        uint
	helperRate  float64
	data        uint64
	seed        int64
	faultsSpec  string
	metricsFile string
}

func main() {
	opts := options{}
	flag.Float64Var(&opts.tagDist, "tag-dist", 20, "tag to reader distance in cm")
	flag.Float64Var(&opts.helperDist, "helper-dist", 3, "helper to tag distance in m")
	flag.UintVar(&opts.rate, "rate", 100, "uplink bit rate in bps advised to the tag")
	flag.Float64Var(&opts.helperRate, "helper-rate", 1000, "helper traffic in packets/s")
	flag.Uint64Var(&opts.data, "data", 0xBEEF00C0FFEE, "48-bit tag payload to report")
	flag.Int64Var(&opts.seed, "seed", 1, "random seed")
	flag.StringVar(&opts.faultsSpec, "faults", "", "fault profile or schedule to impair the channel (empty = clean)")
	flag.StringVar(&opts.metricsFile, "metrics", "", "write pipeline metrics as JSON to this file")
	flag.Parse()

	if err := run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "wbsim:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, opts options) error {
	if opts.tagDist <= 0 {
		return fmt.Errorf("-tag-dist must be positive (got %g)", opts.tagDist)
	}
	if opts.helperDist <= 0 {
		return fmt.Errorf("-helper-dist must be positive (got %g)", opts.helperDist)
	}
	if opts.rate == 0 || opts.rate > 65535 {
		return fmt.Errorf("-rate must be in 1..65535 bps (got %d)", opts.rate)
	}
	if opts.helperRate <= 0 {
		return fmt.Errorf("-helper-rate must be positive (got %g)", opts.helperRate)
	}
	sched, err := faults.ParseSpec(opts.faultsSpec)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(core.Config{
		Seed:              opts.seed,
		TagReaderDistance: units.Centimeters(opts.tagDist),
		HelperTagDistance: units.Meters(opts.helperDist),
		Faults:            sched,
	})
	if err != nil {
		return err
	}
	if sched != nil && !sched.Empty() {
		fmt.Fprintf(out, "fault schedule: %s\n", sched)
	}
	fmt.Fprintf(out, "deployment: tag %.0f cm from reader, helper %.1f m away, %.0f pkt/s\n",
		opts.tagDist, opts.helperDist, opts.helperRate)
	fmt.Fprintf(out, "uplink modulation depth: %.1f%%\n", 100*sys.ModulationDepth())

	if err := (&wifi.CBRSource{
		Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 1 / opts.helperRate,
	}).Start(); err != nil {
		return err
	}
	sys.Run(0.3) // warm up traffic

	q := reader.Query{Command: reader.CmdRead, TagID: 0x0042, BitRate: uint16(opts.rate)}
	res, err := sys.RunQuery(q, opts.data, core.DefaultTransactionConfig())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "query: cmd=%d tag=%#04x rate=%d bps\n", q.Command, q.TagID, q.BitRate)
	fmt.Fprintf(out, "attempts: %d (backoff %.1f ms)\n", res.Attempts, res.BackoffTotal*1e3)
	fmt.Fprintf(out, "downlink (reader→tag): decoded=%v heard=%+v\n", res.TagDecoded, res.TagHeard)
	fmt.Fprintf(out, "uplink (tag→reader):  ok=%v correlation=%.2f\n", res.ResponseOK, res.ResponseCorrelation)
	if res.Faults.Injected > 0 {
		fmt.Fprintf(out, "faults: %d injected %v survived=%v\n",
			res.Faults.Injected, res.Faults.Kinds, res.Faults.Survived)
	}
	if !res.ResponseOK {
		return fmt.Errorf("transaction failed: no decodable response")
	}
	fmt.Fprintf(out, "tag reported: %#012x\n", res.ResponseData)
	if res.ResponseData != opts.data&((1<<48)-1) {
		return fmt.Errorf("payload mismatch: reported %#012x, sent %#012x",
			res.ResponseData, opts.data&((1<<48)-1))
	}
	fmt.Fprintln(out, "round trip complete: payload verified")
	if opts.metricsFile != "" {
		f, err := os.Create(opts.metricsFile)
		if err != nil {
			return err
		}
		if err := sys.Metrics().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
