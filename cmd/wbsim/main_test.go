package main

import (
	"bytes"
	"strings"
	"testing"
)

// goodOpts is a deployment known to complete a transaction (the command's
// defaults).
func goodOpts() options {
	return options{
		tagDist:    20,
		helperDist: 3,
		rate:       100,
		helperRate: 1000,
		data:       0xBEEF00C0FFEE,
		seed:       1,
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*options)
	}{
		{"zero rate", func(o *options) { o.rate = 0 }},
		{"rate overflows uint16", func(o *options) { o.rate = 70000 }},
		{"zero helper rate", func(o *options) { o.helperRate = 0 }},
		{"negative helper rate", func(o *options) { o.helperRate = -10 }},
		{"zero tag distance", func(o *options) { o.tagDist = 0 }},
		{"negative helper distance", func(o *options) { o.helperDist = -1 }},
		{"unknown fault profile", func(o *options) { o.faultsSpec = "earthquake" }},
		{"malformed fault schedule", func(o *options) { o.faultsSpec = "zap@0:1x1" }},
		{"fault intensity out of range", func(o *options) { o.faultsSpec = "burst@0:1x2" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := goodOpts()
			tc.mutate(&opts)
			var out bytes.Buffer
			if err := run(&out, opts); err == nil {
				t.Fatalf("run(%+v) succeeded, want error", opts)
			}
			if out.Len() != 0 {
				t.Errorf("rejected run still wrote %d bytes of output", out.Len())
			}
		})
	}
}

func TestRunCompletesTransaction(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, goodOpts()); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"uplink modulation depth:",
		"tag reported: 0xbeef00c0ffee",
		"round trip complete: payload verified",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "fault schedule:") {
		t.Errorf("clean run printed a fault schedule:\n%s", text)
	}
}

func TestRunFaultedTransactionStillCompletes(t *testing.T) {
	// The lossy profile at half intensity is within the default
	// deployment's retry budget: the transaction must still complete, and
	// the output must surface the schedule that was applied.
	opts := goodOpts()
	opts.faultsSpec = "lossy:0.5"
	var out bytes.Buffer
	if err := run(&out, opts); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"fault schedule:",
		"round trip complete: payload verified",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}
