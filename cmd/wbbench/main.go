// Command wbbench regenerates every table and figure of the Wi-Fi
// Backscatter paper's evaluation from the simulated system.
//
// Usage:
//
//	wbbench [-quick] [-seed N] [-workers N] [-only fig10a,fig17,...] [-compare]
//	        [-faults profile|spec] [-metrics out.json]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Without flags it runs the full paper-scale suite (minutes); -quick runs
// a reduced version of every experiment in seconds. -workers bounds the
// goroutines used for independent trials (0 = all cores); every worker
// count produces bit-identical tables. -compare runs the selected
// experiments twice — serial then parallel — verifies the outputs match,
// and reports the wall-clock speedup.
//
// -faults injects a deterministic impairment schedule into every trial
// system: either a named profile ("lossy", "chaos", ..., optionally with
// an intensity as in "chaos:0.5") or an explicit schedule like
// "burst@0:2x0.7;fade@1:3x0.5" (see internal/faults). The injected
// randomness draws from a dedicated per-trial stream, so faulted runs
// stay bit-identical across -workers values.
//
// -metrics writes the suite's aggregated pipeline metrics (decoder,
// medium, engine counters from every instrumented experiment) as
// deterministic JSON: the bytes depend only on seed, experiment
// selection, and -faults, not on -workers or wall-clock. -cpuprofile and
// -memprofile write standard runtime/pprof profiles for `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-scale experiments")
	seed := flag.Int64("seed", 1, "random seed (equal seeds replay identically)")
	workers := flag.Int("workers", 0, "worker goroutines for independent trials (0 = all cores, 1 = serial)")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. fig10a,fig17); empty runs all")
	list := flag.Bool("list", false, "list experiment ids and exit")
	compare := flag.Bool("compare", false, "run serial then parallel, verify identical output, report speedup")
	faultsSpec := flag.String("faults", "", "fault profile or schedule for every trial (see wbbench doc; empty = clean channel)")
	metricsFile := flag.String("metrics", "", "write aggregated pipeline metrics as JSON to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wbbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "wbbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	suite := eval.Suite{Seed: *seed, Quick: *quick, Workers: *workers, Progress: os.Stderr}
	if *faultsSpec != "" {
		sched, err := faults.ParseSpec(*faultsSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wbbench:", err)
			os.Exit(1)
		}
		suite.Faults = sched
	}
	if *metricsFile != "" {
		suite.Metrics = obs.NewRegistry()
	}
	if *list {
		for _, e := range suite.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Name)
		}
		return
	}
	filter := map[string]bool{}
	if *only != "" {
		known := map[string]bool{}
		for _, e := range suite.Experiments() {
			known[e.ID] = true
		}
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if !known[id] {
				fmt.Fprintf(os.Stderr, "wbbench: unknown experiment id %q (run wbbench -list for the catalog)\n", id)
				os.Exit(1)
			}
			filter[id] = true
		}
	}
	if *compare {
		if err := runCompare(suite, filter); err != nil {
			fmt.Fprintln(os.Stderr, "wbbench:", err)
			os.Exit(1)
		}
	} else if err := suite.Run(os.Stdout, filter); err != nil {
		fmt.Fprintln(os.Stderr, "wbbench:", err)
		os.Exit(1)
	}
	if *metricsFile != "" {
		if err := writeMetrics(*metricsFile, suite.Metrics); err != nil {
			fmt.Fprintln(os.Stderr, "wbbench:", err)
			os.Exit(1)
		}
	}
	if *memProfile != "" {
		if err := writeMemProfile(*memProfile); err != nil {
			fmt.Fprintln(os.Stderr, "wbbench:", err)
			os.Exit(1)
		}
	}
}

// writeMetrics renders the registry's snapshot to path. The output is
// deterministic: sorted metric names, no timestamps or host details.
func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMemProfile forces a GC for up-to-date allocation stats, then writes
// the heap profile.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runCompare times the suite at one worker and at the requested worker
// count, checks the outputs are byte-identical, and prints the speedup.
func runCompare(suite eval.Suite, filter map[string]bool) error {
	parWorkers := suite.Workers
	if parWorkers == 0 {
		parWorkers = runtime.GOMAXPROCS(0)
	}
	serial := suite
	serial.Workers = 1
	serial.Progress = nil
	par := suite
	par.Workers = parWorkers
	par.Progress = nil

	var serialOut, parOut strings.Builder
	fmt.Fprintf(os.Stderr, "serial pass (1 worker)...\n")
	t0 := time.Now()
	if err := serial.Run(&serialOut, filter); err != nil {
		return err
	}
	serialTime := time.Since(t0)
	fmt.Fprintf(os.Stderr, "parallel pass (%d workers)...\n", parWorkers)
	t0 = time.Now()
	if err := par.Run(&parOut, filter); err != nil {
		return err
	}
	parTime := time.Since(t0)

	if serialOut.String() != parOut.String() {
		return fmt.Errorf("serial and parallel outputs differ — determinism violated")
	}
	fmt.Print(parOut.String())
	fmt.Printf("serial:   %v\nparallel: %v (%d workers)\nspeedup:  %.2fx (outputs identical)\n",
		serialTime.Round(time.Millisecond), parTime.Round(time.Millisecond),
		parWorkers, float64(serialTime)/float64(parTime))
	return nil
}
