// Command wbbench regenerates every table and figure of the Wi-Fi
// Backscatter paper's evaluation from the simulated system.
//
// Usage:
//
//	wbbench [-quick] [-seed N] [-only fig10a,fig17,...]
//
// Without flags it runs the full paper-scale suite (minutes); -quick runs
// a reduced version of every experiment in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/eval"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-scale experiments")
	seed := flag.Int64("seed", 1, "random seed (equal seeds replay identically)")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. fig10a,fig17); empty runs all")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	suite := eval.Suite{Seed: *seed, Quick: *quick, Progress: os.Stderr}
	if *list {
		for _, e := range suite.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Name)
		}
		return
	}
	filter := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			filter[strings.TrimSpace(id)] = true
		}
	}
	if err := suite.Run(os.Stdout, filter); err != nil {
		fmt.Fprintln(os.Stderr, "wbbench:", err)
		os.Exit(1)
	}
}
