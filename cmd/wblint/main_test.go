package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestCatalogStableAndComplete pins the -codes contract: the catalog holds
// exactly the suite's diagnostic codes, sorted, with no duplicates — so a
// new analyzer that forgets its Codes entries (or a copy-pasted code)
// fails here by name.
func TestCatalogStableAndComplete(t *testing.T) {
	want := []string{
		"DT001", "DT002", "DT003", "DT004", "DT005", "DT006", "DT007",
		"FS001", "FS002",
		"HP001", "HP002", "HP003",
		"IG001", "IG002",
		"PH001", "PH002", "PH003", "PH004", "PH005",
		"SH001",
		"UC001", "UC002", "UC003",
	}
	cat := analysis.Catalog()
	if len(cat) != len(want) {
		t.Fatalf("catalog has %d codes, want %d: %v", len(cat), len(want), cat)
	}
	for i, e := range cat {
		if e.Code != want[i] {
			t.Errorf("catalog[%d] = %s, want %s", i, e.Code, want[i])
		}
		if e.Summary == "" || e.Analyzer == "" {
			t.Errorf("catalog entry %s is missing its summary or analyzer", e.Code)
		}
	}
}

// TestPrintCodes checks the -codes rendering: one line per catalog entry,
// each naming the code, its analyzer, and its summary.
func TestPrintCodes(t *testing.T) {
	var buf strings.Builder
	printCodes(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	cat := analysis.Catalog()
	if len(lines) != len(cat) {
		t.Fatalf("-codes printed %d lines, want %d", len(lines), len(cat))
	}
	for i, e := range cat {
		for _, part := range []string{e.Code, e.Analyzer, e.Summary} {
			if !strings.Contains(lines[i], part) {
				t.Errorf("-codes line %d %q is missing %q", i, lines[i], part)
			}
		}
	}
}

// TestREADMEListsEveryCode holds the README's Static gates catalog against
// the binary: every code the suite can emit must be documented.
func TestREADMEListsEveryCode(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		t.Fatalf("reading README: %v", err)
	}
	readme := string(data)
	for _, e := range analysis.Catalog() {
		if !strings.Contains(readme, e.Code) {
			t.Errorf("README.md does not document diagnostic code %s (%s: %s)",
				e.Code, e.Analyzer, e.Summary)
		}
	}
}
