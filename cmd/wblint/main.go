// Command wblint runs the project's static-analysis suite (see
// internal/analysis): the intra-package analyzers (determinism,
// poolhygiene, floatsafe, unitcheck, streamhygiene) plus the
// interprocedural module analyzers (taint, poolescape, hotpath), which
// follow values across every function boundary in the load set. It parses
// and typechecks packages itself with the standard library, so it works
// offline with no module dependencies.
//
// Usage:
//
//	wblint [-json] [-codes] [packages]
//
// Packages are directories or "dir/..." patterns; the default is "./...".
// Findings print as file:line:col: CODE message (analyzer). With -json the
// findings are emitted as a JSON array (stable order: file, line, column,
// code) so CI can diff runs. Exit status: 0 clean, 1 findings, 2 usage or
// load error.
//
// Suppress a finding in source with an explained directive:
//
//	//wblint:ignore PH003 released by releaseStats once combining is done
//
// or for a whole file with //wblint:file-ignore. Directives without a
// reason, and directives that no longer match a finding, are themselves
// reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	codes := flag.Bool("codes", false, "list every analyzer and diagnostic code, then exit")
	flag.Parse()

	if *codes {
		printCodes(os.Stdout)
		return
	}
	diags, err := run(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "wblint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "wblint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// run resolves the package patterns and checks every matched package.
func run(patterns []string) ([]analysis.Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		expanded, err := expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	return analysis.Check(loader, dirs, analysis.DefaultConfig())
}

// expand turns one pattern into package directories. "dir/..." walks; a
// plain path must be a package directory.
func expand(pat string) ([]string, error) {
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		if rest == "" || rest == "." {
			rest = "."
		}
		abs, err := filepath.Abs(rest)
		if err != nil {
			return nil, err
		}
		return analysis.WalkPackages(abs)
	}
	abs, err := filepath.Abs(pat)
	if err != nil {
		return nil, err
	}
	info, err := os.Stat(abs)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("%s is not a package directory", pat)
	}
	return []string{abs}, nil
}

// printCodes writes the complete diagnostic-code catalog — one line per
// code, sorted by code — straight from analysis.Catalog, so the listing
// can never drift from what the binary actually emits.
func printCodes(w io.Writer) {
	for _, e := range analysis.Catalog() {
		fmt.Fprintf(w, "%s  %-13s %s\n", e.Code, e.Analyzer, e.Summary)
	}
}
