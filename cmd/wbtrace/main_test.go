package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/capture"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name    string
		tagDist float64
		packets int
		what    string
	}{
		{"zero packets", 5, 0, "csi"},
		{"negative packets", 5, -3, "csi"},
		{"zero distance", 0, 100, "csi"},
		{"negative distance", -2, 100, "rssi"},
		{"unknown what", 5, 100, "spectrogram"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(&out, tc.tagDist, tc.packets, tc.what, 1, "", "")
			if err == nil {
				t.Fatalf("run(%g, %d, %q) succeeded, want error", tc.tagDist, tc.packets, tc.what)
			}
			if out.Len() != 0 {
				t.Errorf("rejected run still wrote %d bytes of output", out.Len())
			}
		})
	}
}

func TestRunEmitsCSV(t *testing.T) {
	for _, what := range []string{"csi", "rssi"} {
		t.Run(what, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(&out, 5, 50, what, 1, "", ""); err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSpace(out.String()), "\n")
			if len(lines) != 51 { // header + 50 rows
				t.Fatalf("got %d lines, want 51", len(lines))
			}
			if !strings.HasPrefix(lines[0], "packet,timestamp,tag_state,"+what+"_a0") {
				t.Errorf("unexpected header %q", lines[0])
			}
		})
	}
}

func TestFramesRoundTripThroughSummarize(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 5, 50, "frames", 1, "", ""); err != nil {
		t.Fatal(err)
	}
	recs, err := capture.NewReader(bytes.NewReader(out.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("frames output did not parse back: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("frames output holds no records")
	}

	path := filepath.Join(t.TempDir(), "trace.wbt")
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var summary bytes.Buffer
	if err := summarizeFile(&summary, path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary.String(), "records:") {
		t.Errorf("summary missing record count:\n%s", summary.String())
	}
}

func TestSummarizeFileErrors(t *testing.T) {
	var out bytes.Buffer
	if err := summarizeFile(&out, filepath.Join(t.TempDir(), "missing.wbt")); err == nil {
		t.Error("missing file should error")
	}
	garbled := filepath.Join(t.TempDir(), "garbled.wbt")
	if err := os.WriteFile(garbled, []byte("this is not a capture"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := summarizeFile(&out, garbled); err == nil {
		t.Error("garbled capture should error")
	}
}
