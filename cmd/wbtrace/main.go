// Command wbtrace dumps simulated traces: the per-packet CSI amplitude of
// every sub-channel (the raw data behind Figs. 3 and 6) or the per-antenna
// RSSI as CSV, a binary frame capture of everything on the medium, or a
// summary of an existing capture.
//
// Usage:
//
//	wbtrace [-tag-dist cm] [-packets N] [-what csi|rssi|frames] [-seed N] > out
//	wbtrace -summarize trace.wbt
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/tag"
	"repro/internal/units"
	"repro/internal/wifi"
)

func main() {
	tagDist := flag.Float64("tag-dist", 5, "tag to reader distance in cm")
	packets := flag.Int("packets", 3000, "number of packets to capture")
	what := flag.String("what", "csi", "csi, rssi (CSV) or frames (binary capture)")
	seed := flag.Int64("seed", 1, "random seed")
	summarize := flag.String("summarize", "", "summarize an existing frame capture and exit")
	flag.Parse()

	if *summarize != "" {
		if err := summarizeFile(*summarize); err != nil {
			fmt.Fprintln(os.Stderr, "wbtrace:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*tagDist, *packets, *what, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "wbtrace:", err)
		os.Exit(1)
	}
}

// summarizeFile prints a capture's statistics.
func summarizeFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := capture.NewReader(f).ReadAll()
	if err != nil {
		return err
	}
	s := capture.Summarize(recs)
	fmt.Printf("records:     %d (%d collided, %d lost)\n", s.Records, s.Collided, s.Lost)
	fmt.Printf("bytes:       %d\n", s.Bytes)
	fmt.Printf("span:        %.3f s, air time %.3f s (%.1f%% utilization)\n",
		s.LastEnd-s.FirstStart, s.AirTime, 100*s.Utilization())
	for ft, n := range s.ByType {
		fmt.Printf("  %-12s %d\n", ft.String()+":", n)
	}
	return nil
}

func run(tagDist float64, packets int, what string, seed int64) error {
	sys, err := core.NewSystem(core.Config{
		Seed:              seed,
		TagReaderDistance: units.Centimeters(tagDist),
	})
	if err != nil {
		return err
	}
	sys.EnableTxLog()
	(&wifi.CBRSource{
		Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001,
	}).Start()
	payload := make([]bool, packets/10)
	for i := range payload {
		payload[i] = i%2 == 0
	}
	mod, err := sys.TransmitUplink(tag.FrameBits(payload), 1.0, 100)
	if err != nil {
		return err
	}
	sys.Run(mod.End() + 0.5)
	s := sys.Series()

	if what == "frames" {
		cw := capture.NewWriter(os.Stdout)
		for i, tx := range sys.TxLog() {
			if i >= packets {
				break
			}
			if err := cw.Write(&capture.Record{
				Start: tx.Start, End: tx.End, Rate: tx.Rate,
				Collided: tx.Collided, Lost: tx.Lost, Frame: *tx.Frame,
			}); err != nil {
				return err
			}
		}
		return cw.Flush()
	}
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	switch what {
	case "csi":
		header := []string{"packet", "timestamp", "tag_state"}
		for a := 0; a < s.Antennas(); a++ {
			for k := 0; k < s.Subchannels(); k++ {
				header = append(header, fmt.Sprintf("csi_a%d_s%d", a, k))
			}
		}
		if err := w.Write(header); err != nil {
			return err
		}
		for i, m := range s.Measurements {
			if i >= packets {
				break
			}
			row := []string{
				strconv.Itoa(i),
				strconv.FormatFloat(m.Timestamp, 'f', 6, 64),
				boolTo01(mod.StateAt(m.Timestamp)),
			}
			for a := range m.CSI {
				for _, v := range m.CSI[a] {
					row = append(row, strconv.FormatFloat(v, 'f', 4, 64))
				}
			}
			if err := w.Write(row); err != nil {
				return err
			}
		}
	case "rssi":
		header := []string{"packet", "timestamp", "tag_state"}
		for a := 0; a < s.Antennas(); a++ {
			header = append(header, fmt.Sprintf("rssi_a%d", a))
		}
		if err := w.Write(header); err != nil {
			return err
		}
		for i, m := range s.Measurements {
			if i >= packets {
				break
			}
			row := []string{
				strconv.Itoa(i),
				strconv.FormatFloat(m.Timestamp, 'f', 6, 64),
				boolTo01(mod.StateAt(m.Timestamp)),
			}
			for _, v := range m.RSSI {
				row = append(row, strconv.FormatFloat(v, 'f', 2, 64))
			}
			if err := w.Write(row); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown -what %q (use csi, rssi, or frames)", what)
	}
	return nil
}

func boolTo01(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
