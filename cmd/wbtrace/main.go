// Command wbtrace dumps simulated traces: the per-packet CSI amplitude of
// every sub-channel (the raw data behind Figs. 3 and 6) or the per-antenna
// RSSI as CSV, a binary frame capture of everything on the medium, or a
// summary of an existing capture.
//
// Usage:
//
//	wbtrace [-tag-dist cm] [-packets N] [-what csi|rssi|frames] [-seed N]
//	        [-faults profile|spec] [-metrics out.json] > out
//	wbtrace -summarize trace.wbt
//
// -faults impairs the captured channel with a deterministic fault schedule
// (named profile like "lossy" or explicit spec; see internal/faults), so
// decoder work on dirty traces is reproducible.
//
// -metrics writes the capture run's pipeline metrics (engine and medium
// counters) as deterministic JSON alongside the trace.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/tag"
	"repro/internal/units"
	"repro/internal/wifi"
)

func main() {
	tagDist := flag.Float64("tag-dist", 5, "tag to reader distance in cm")
	packets := flag.Int("packets", 3000, "number of packets to capture")
	what := flag.String("what", "csi", "csi, rssi (CSV) or frames (binary capture)")
	seed := flag.Int64("seed", 1, "random seed")
	summarize := flag.String("summarize", "", "summarize an existing frame capture and exit")
	faultsSpec := flag.String("faults", "", "fault profile or schedule to impair the capture (empty = clean)")
	metricsFile := flag.String("metrics", "", "write pipeline metrics as JSON to this file")
	flag.Parse()

	if *summarize != "" {
		if err := summarizeFile(os.Stdout, *summarize); err != nil {
			fmt.Fprintln(os.Stderr, "wbtrace:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdout, *tagDist, *packets, *what, *seed, *faultsSpec, *metricsFile); err != nil {
		fmt.Fprintln(os.Stderr, "wbtrace:", err)
		os.Exit(1)
	}
}

// summarizeFile prints a capture's statistics.
func summarizeFile(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := capture.NewReader(f).ReadAll()
	if err != nil {
		return err
	}
	s := capture.Summarize(recs)
	fmt.Fprintf(out, "records:     %d (%d collided, %d lost)\n", s.Records, s.Collided, s.Lost)
	fmt.Fprintf(out, "bytes:       %d\n", s.Bytes)
	fmt.Fprintf(out, "span:        %.3f s, air time %.3f s (%.1f%% utilization)\n",
		s.LastEnd-s.FirstStart, s.AirTime, 100*s.Utilization())
	types := make([]wifi.FrameType, 0, len(s.ByType))
	for ft := range s.ByType {
		types = append(types, ft)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, ft := range types {
		fmt.Fprintf(out, "  %-12s %d\n", ft.String()+":", s.ByType[ft])
	}
	return nil
}

func run(out io.Writer, tagDist float64, packets int, what string, seed int64, faultsSpec, metricsFile string) error {
	if packets <= 0 {
		return fmt.Errorf("-packets must be positive (got %d)", packets)
	}
	if tagDist <= 0 {
		return fmt.Errorf("-tag-dist must be positive (got %g)", tagDist)
	}
	switch what {
	case "csi", "rssi", "frames":
	default:
		return fmt.Errorf("unknown -what %q (use csi, rssi, or frames)", what)
	}
	sched, err := faults.ParseSpec(faultsSpec)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(core.Config{
		Seed:              seed,
		TagReaderDistance: units.Centimeters(tagDist),
		Faults:            sched,
	})
	if err != nil {
		return err
	}
	sys.EnableTxLog()
	if err := (&wifi.CBRSource{
		Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001,
	}).Start(); err != nil {
		return err
	}
	payload := make([]bool, packets/10)
	for i := range payload {
		payload[i] = i%2 == 0
	}
	mod, err := sys.TransmitUplink(tag.FrameBits(payload), 1.0, 100)
	if err != nil {
		return err
	}
	sys.Run(mod.End() + 0.5)
	if metricsFile != "" {
		f, err := os.Create(metricsFile)
		if err != nil {
			return err
		}
		if err := sys.Metrics().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	s := sys.Series()

	if what == "frames" {
		cw := capture.NewWriter(out)
		for i, tx := range sys.TxLog() {
			if i >= packets {
				break
			}
			if err := cw.Write(&capture.Record{
				Start: tx.Start, End: tx.End, Rate: tx.Rate,
				Collided: tx.Collided, Lost: tx.Lost, Frame: *tx.Frame,
			}); err != nil {
				return err
			}
		}
		return cw.Flush()
	}
	w := csv.NewWriter(out)
	defer w.Flush()
	switch what {
	case "csi":
		header := []string{"packet", "timestamp", "tag_state"}
		for a := 0; a < s.Antennas(); a++ {
			for k := 0; k < s.Subchannels(); k++ {
				header = append(header, fmt.Sprintf("csi_a%d_s%d", a, k))
			}
		}
		if err := w.Write(header); err != nil {
			return err
		}
		for i, m := range s.Measurements {
			if i >= packets {
				break
			}
			row := []string{
				strconv.Itoa(i),
				strconv.FormatFloat(m.Timestamp, 'f', 6, 64),
				boolTo01(mod.StateAt(m.Timestamp)),
			}
			for a := range m.CSI {
				for _, v := range m.CSI[a] {
					row = append(row, strconv.FormatFloat(v, 'f', 4, 64))
				}
			}
			if err := w.Write(row); err != nil {
				return err
			}
		}
	case "rssi":
		header := []string{"packet", "timestamp", "tag_state"}
		for a := 0; a < s.Antennas(); a++ {
			header = append(header, fmt.Sprintf("rssi_a%d", a))
		}
		if err := w.Write(header); err != nil {
			return err
		}
		for i, m := range s.Measurements {
			if i >= packets {
				break
			}
			row := []string{
				strconv.Itoa(i),
				strconv.FormatFloat(m.Timestamp, 'f', 6, 64),
				boolTo01(mod.StateAt(m.Timestamp)),
			}
			for _, v := range m.RSSI {
				row = append(row, strconv.FormatFloat(v, 'f', 2, 64))
			}
			if err := w.Write(row); err != nil {
				return err
			}
		}
	}
	return nil
}

func boolTo01(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
