package repro

// One benchmark per table/figure in the paper's evaluation. Each iteration
// regenerates the figure's data series at reduced scale (the full-scale
// sweep is `go run ./cmd/wbbench`); the generated table is printed once
// under -v so the series the paper reports is visible from the bench run.
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/units"
)

// benchOpt is the reduced per-iteration scale.
var benchOpt = eval.Options{Seed: 1, Trials: 2, PayloadLen: 45}

// printOnce logs each figure's table a single time across the whole bench
// run so the output stays readable.
var printOnce sync.Map

func logTable(b *testing.B, id string, t *eval.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if _, loaded := printOnce.LoadOrStore(id, true); !loaded {
		b.Log("\n" + t.String())
	}
}

func BenchmarkFig03RawCSITrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := eval.RawCSITrace(units.Centimeters(5), 2000, 1)
		logTable(b, "fig3", t, err)
	}
}

func BenchmarkFig04NormalizedPDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.NormalizedPDF(6000, 1)
		logTable(b, "fig4", t, err)
	}
}

func BenchmarkFig05GoodSubchannels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.GoodSubchannels(benchOpt)
		logTable(b, "fig5", t, err)
	}
}

func BenchmarkFig06RawCSIFar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, t, err := eval.RawCSITrace(1, 2000, 2)
		logTable(b, "fig6", t, err)
	}
}

func BenchmarkFig10aUplinkBERCSI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.UplinkBERvsDistance(core.DecodeCSI, benchOpt)
		logTable(b, "fig10a", t, err)
	}
}

func BenchmarkFig10bUplinkBERRSSI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.UplinkBERvsDistance(core.DecodeRSSI, benchOpt)
		logTable(b, "fig10b", t, err)
	}
}

func BenchmarkFig11FrequencyDiversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.FrequencyDiversity(benchOpt)
		logTable(b, "fig11", t, err)
	}
}

func BenchmarkFig12RateVsHelperRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.RateVsHelperRate(benchOpt)
		logTable(b, "fig12", t, err)
	}
}

func BenchmarkFig14HelperLocations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.HelperLocations(eval.Options{Seed: 1, Trials: 2, PayloadLen: 64})
		logTable(b, "fig14", t, err)
	}
}

func BenchmarkFig15AmbientTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.AmbientTraffic(eval.Options{Seed: 1, Trials: 1, PayloadLen: 45})
		logTable(b, "fig15", t, err)
	}
}

func BenchmarkFig16BeaconOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.BeaconOnly(eval.Options{Seed: 1, Trials: 1, PayloadLen: 20})
		logTable(b, "fig16", t, err)
	}
}

func BenchmarkFig17DownlinkBER(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.DownlinkBER(3000, 1, 0)
		logTable(b, "fig17", t, err)
	}
}

func BenchmarkFig18FalsePositives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.FalsePositives(0.02, 1, 0)
		logTable(b, "fig18", t, err)
	}
}

func BenchmarkFig19WiFiImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.WiFiImpact(units.Centimeters(5), 10, 1, 0)
		logTable(b, "fig19a", t, err)
		t, err = eval.WiFiImpact(units.Centimeters(30), 10, 1, 0)
		logTable(b, "fig19b", t, err)
	}
}

func BenchmarkFig20CorrelationRange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.CorrelationRange(eval.Options{Seed: 1, Trials: 2, PayloadLen: 12})
		logTable(b, "fig20", t, err)
	}
}

func BenchmarkAblationCombining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.CombiningAblation(benchOpt)
		logTable(b, "abl-combine", t, err)
	}
}

func BenchmarkAblationDecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.DecisionAblation(benchOpt)
		logTable(b, "abl-decide", t, err)
	}
}

func BenchmarkAblationBinning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.BinningAblation(benchOpt)
		logTable(b, "abl-bin", t, err)
	}
}

func BenchmarkAblationThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.ThresholdAblation(3000, 1, 0)
		logTable(b, "abl-thresh", t, err)
	}
}

func BenchmarkInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.MultiTagInventory(benchOpt)
		logTable(b, "inventory", t, err)
	}
}

func BenchmarkChannelSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.ChannelSweep(benchOpt)
		logTable(b, "channels", t, err)
	}
}

func BenchmarkAckDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.AckDetection(benchOpt)
		logTable(b, "ack", t, err)
	}
}

func BenchmarkDutyCycledSensor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.DutyCycledSensor(1)
		logTable(b, "duty", t, err)
	}
}

func BenchmarkMACValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := eval.MACValidation(1, 1)
		logTable(b, "mac", t, err)
	}
}

func BenchmarkPowerBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := eval.PowerBudget()
		logTable(b, "power", t, nil)
	}
}

// The serial/parallel pair below measures the trial-engine speedup on the
// same uplink sweep (Fig. 10a at reduced scale). On a multi-core machine
// the parallel run should approach a GOMAXPROCS-fold improvement; the
// tables are bit-identical either way.

func uplinkSweepOpt(workers int) eval.Options {
	return eval.Options{Seed: 1, Trials: 4, PayloadLen: 45, Workers: workers}
}

func BenchmarkUplinkSweepSerial(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := eval.UplinkBERvsDistance(core.DecodeCSI, uplinkSweepOpt(1))
		logTable(b, "sweep-serial", t, err)
	}
}

func BenchmarkUplinkSweepParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := eval.UplinkBERvsDistance(core.DecodeCSI, uplinkSweepOpt(0))
		logTable(b, "sweep-parallel", t, err)
	}
}
